// Extended-workload evaluation — the paper's stated future work ("we plan
// to evaluate the proposed designs with more application workloads that
// involve bulk non-contiguous data transfer"): the WRF weather halo
// (struct-of-subarrays, dense planes) and the LAMMPS full-atom exchange
// (indexed-block records, semi-sparse), run through the same bulk-exchange
// harness as the paper's four workloads, on both machines.
#include <iostream>

#include "bench_util/sweeps.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

int main() {
  using namespace dkf;
  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync, schemes::Scheme::GpuAsync,
      schemes::Scheme::CpuGpuHybrid, schemes::Scheme::Proposed,
      schemes::Scheme::ProposedTuned};

  struct Panel {
    const char* title;
    workloads::Workload (*make)(std::size_t);
    std::vector<std::size_t> dims;
  };
  const std::vector<Panel> panels = {
      {"WRF x-z ghost plane (dense, struct-of-subarrays)",
       workloads::wrfXzPlane, {16, 32, 64, 128}},
      {"LAMMPS full-atom exchange (semi-sparse, indexed-block records)",
       workloads::lammpsFull, {8, 16, 32, 64, 128}},
  };

  for (const auto& [mname, machine] :
       {std::pair{"Lassen", hw::lassen()}, std::pair{"ABCI", hw::abci()}}) {
    for (const auto& panel : panels) {
      bench::banner(std::cout,
                    std::string("Extended workload on ") + mname + " — " +
                        panel.title,
                    "32 Isend/Irecv per iteration; latency, lower is better");
      bench::schemeSweepTable(std::cout, machine, panel.make, panel.dims,
                              scheme_list, /*n_ops=*/32, /*iterations=*/20,
                              /*warmup=*/3);
    }
  }
  std::cout << "\nExpectation (future-work validation): the fusion benefit "
               "generalizes — large wins on the semi-sparse LAMMPS pattern, "
               "solid wins on the dense WRF planes except the smallest "
               "sizes where the GDRCopy hybrid competes.\n";
  return 0;
}
