// Fig. 1 — Motivation: time breakdown of GPU-optimized packing kernels
// across NVIDIA GPU generations (K80, P100, V100) for the Specfem3D and
// MILC workloads. The paper's point: kernel launch overhead stays ~10 us
// across generations while the packing kernels themselves shrink, so launch
// dominates.
//
// Output: one row per (workload, GPU) with kernel time, launch overhead,
// and the launch share of the total — the quantity Fig. 1's stacked bars
// visualize.
#include <iostream>

#include "bench_util/table.hpp"
#include "gpu/gpu.hpp"
#include "hw/machines.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace dkf;

struct GenResult {
  DurationNs kernel{0};
  DurationNs launch{0};
};

GenResult measureOnce(const hw::GpuSpec& gpu_spec,
                      const workloads::Workload& wl) {
  sim::Engine eng;
  hw::NodeSpec node = hw::lassen().node;
  node.gpu = gpu_spec;
  gpu::Gpu gpu(eng, node, 0);

  auto layout = std::make_shared<const ddt::Layout>(
      ddt::flatten(wl.type, wl.count));
  auto origin = gpu.memory().allocate(std::max<std::size_t>(
      static_cast<std::size_t>(layout->endOffset()), 64));
  auto packed = gpu.memory().allocate(std::max<std::size_t>(layout->size(), 64));

  gpu::Gpu::Op op;
  op.kind = gpu::Gpu::Op::Kind::Pack;
  op.layout = layout;
  op.src = origin.bytes;
  op.dst = packed.bytes;
  const auto handle = gpu.launchKernel(0, std::move(op));
  eng.run();
  return GenResult{handle.end - handle.start,
                   gpu_spec.kernel_launch_overhead};
}

}  // namespace

int main() {
  using namespace dkf;
  bench::banner(std::cout,
                "Fig. 1 — Kernel launch overhead vs. packing-kernel time "
                "across GPU generations",
                "Motivating observation: launch overhead dominates the "
                "short packing kernels on every generation");

  const std::vector<std::pair<std::string, hw::GpuSpec>> gpus = {
      {"Tesla K80", hw::gpuK80()},
      {"Tesla P100", hw::gpuP100()},
      {"Tesla V100", hw::gpuV100()},
  };
  const std::vector<workloads::Workload> wls = {
      workloads::specfem3dCm(32),  // sparse, indexed-struct
      workloads::milcZdown(32),    // dense, nested vector
  };

  bench::Table table({"Workload", "GPU", "Pack kernel", "Kernel launch",
                      "Launch share"});
  for (const auto& wl : wls) {
    for (const auto& [name, spec] : gpus) {
      const auto r = measureOnce(spec, wl);
      const double share =
          100.0 * static_cast<double>(r.launch) /
          static_cast<double>(r.launch + r.kernel);
      table.addRow({wl.name, name, bench::cellUs(toUs(r.kernel)),
                    bench::cellUs(toUs(r.launch)),
                    bench::cell(share, 1) + " %"});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: launch overhead ~10 us on all three "
               "generations, far above the microsecond-scale kernels.\n";
  return 0;
}
