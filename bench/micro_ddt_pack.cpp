// Host-performance micro-benchmarks (google-benchmark) for the DDT engine
// primitives on the critical path of every scheme: datatype flattening,
// layout-cache lookup, and the reference pack/unpack/strided-copy loops.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.hpp"
#include "ddt/datatype.hpp"
#include "ddt/layout.hpp"
#include "ddt/pack.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace dkf;

void BM_FlattenSparseIndexed(benchmark::State& state) {
  const auto wl = workloads::specfem3dOc(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto layout = ddt::flatten(wl.type, 1);
    benchmark::DoNotOptimize(layout.blockCount());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(ddt::flatten(wl.type, 1).blockCount()));
}
BENCHMARK(BM_FlattenSparseIndexed)->Arg(8)->Arg(32)->Arg(128);

void BM_FlattenNestedVector(benchmark::State& state) {
  const auto wl = workloads::milcZdown(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto layout = ddt::flatten(wl.type, 1);
    benchmark::DoNotOptimize(layout.size());
  }
}
BENCHMARK(BM_FlattenNestedVector)->Arg(16)->Arg(64)->Arg(256);

void BM_LayoutCacheHit(benchmark::State& state) {
  ddt::LayoutCache cache;
  const auto wl = workloads::specfem3dCm(64);
  cache.get(wl.type, 1);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(wl.type, 1));
  }
}
BENCHMARK(BM_LayoutCacheHit);

void BM_LayoutCacheMissVsFlatten(benchmark::State& state) {
  const auto wl = workloads::specfem3dCm(64);
  for (auto _ : state) {
    ddt::LayoutCache cache;
    benchmark::DoNotOptimize(cache.get(wl.type, 1));
  }
}
BENCHMARK(BM_LayoutCacheMissVsFlatten);

void BM_PackCpuSparse(benchmark::State& state) {
  const auto wl = workloads::specfem3dOc(static_cast<std::size_t>(state.range(0)));
  const auto layout = ddt::flatten(wl.type, 1);
  std::vector<std::byte> origin(static_cast<std::size_t>(layout.endOffset()));
  std::vector<std::byte> packed(layout.size());
  Rng rng(1);
  for (auto& b : origin) b = static_cast<std::byte>(rng.below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddt::packCpu(layout, origin, packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layout.size()));
}
BENCHMARK(BM_PackCpuSparse)->Arg(8)->Arg(64)->Arg(256);

void BM_PackCpuDense(benchmark::State& state) {
  const auto wl = workloads::nasMgFace(static_cast<std::size_t>(state.range(0)));
  const auto layout = ddt::flatten(wl.type, 1);
  std::vector<std::byte> origin(static_cast<std::size_t>(layout.endOffset()));
  std::vector<std::byte> packed(layout.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddt::packCpu(layout, origin, packed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layout.size()));
}
BENCHMARK(BM_PackCpuDense)->Arg(32)->Arg(64)->Arg(128);

void BM_UnpackCpuDense(benchmark::State& state) {
  const auto wl = workloads::nasMgFace(static_cast<std::size_t>(state.range(0)));
  const auto layout = ddt::flatten(wl.type, 1);
  std::vector<std::byte> origin(static_cast<std::size_t>(layout.endOffset()));
  std::vector<std::byte> packed(layout.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddt::unpackCpu(layout, packed, origin));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(layout.size()));
}
BENCHMARK(BM_UnpackCpuDense)->Arg(32)->Arg(128);

void BM_CopyStrided(benchmark::State& state) {
  const auto a = workloads::milcZdown(static_cast<std::size_t>(state.range(0)));
  const auto la = ddt::flatten(a.type, 1);
  const auto lb = ddt::flatten(
      ddt::Datatype::contiguous(la.size(), ddt::Datatype::byte()), 1);
  std::vector<std::byte> src(static_cast<std::size_t>(la.endOffset()));
  std::vector<std::byte> dst(la.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddt::copyStrided(la, src, lb, dst));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(la.size()));
}
BENCHMARK(BM_CopyStrided)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
