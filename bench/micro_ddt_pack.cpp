// Host-performance micro-benchmark for the DDT engine primitives on the
// critical path of every scheme: datatype flattening, layout-cache lookup,
// and the reference pack loops.
//
// The count-compressed layout engine claims (a) flatten(type, count) costs
// O(blocks-per-element) regardless of count where the seed materialized
// count x blocks segments, (b) a layout occupies O(blocks-per-element)
// memory, and (c) a count sweep over one type costs ONE flatten through the
// LayoutCache (hit rate >= 99%). Each claim is measured against a *naive
// shadow* — the seed algorithm reimplemented locally (enumerate all
// count x blocks runs, globally sort + coalesce, pack per segment) — and
// the sweep is emitted as a JSON record to BENCH_ddt_pack.json (or the path
// given as argv[1]).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/table.hpp"
#include "common/rng.hpp"
#include "ddt/datatype.hpp"
#include "ddt/layout.hpp"
#include "ddt/pack.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace dkf;

/// The seed's flatten: materialize every run of every element, then sort
/// and coalesce the full list. O(count x blocks) time and memory.
std::vector<ddt::Segment> naiveFlatten(const ddt::DatatypePtr& type,
                                       std::size_t count) {
  std::vector<ddt::Segment> segs;
  type->forEachBlock(count, [&](std::int64_t offset, std::size_t len) {
    segs.push_back(ddt::Segment{offset, len});
  });
  std::sort(segs.begin(), segs.end(),
            [](const ddt::Segment& a, const ddt::Segment& b) {
              return a.offset < b.offset;
            });
  std::vector<ddt::Segment> merged;
  merged.reserve(segs.size());
  for (const ddt::Segment& s : segs) {
    if (s.len == 0) continue;
    if (!merged.empty() &&
        merged.back().offset + static_cast<std::int64_t>(merged.back().len) ==
            s.offset) {
      merged.back().len += s.len;
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

/// Median-of-reps wall time of `fn` in nanoseconds.
template <class F>
double timeNs(F&& fn, int reps = 9) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

volatile std::size_t g_sink = 0;

struct FlattenRow {
  std::string workload;
  std::size_t count;
  std::size_t blocks;
  double flatten_ns;
  double naive_ns;
  std::size_t compressed_bytes;
  std::size_t naive_bytes;
  std::size_t groups;
};

struct PackRow {
  std::string workload;
  std::size_t count;
  std::size_t bytes;
  double pack_ns_per_byte;
  double naive_ns_per_byte;
};

std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(std::cout,
                "Micro — count-compressed flatten vs naive segment "
                "materialization (cost and memory must be count-independent)");

  const std::vector<workloads::Workload> types = {
      workloads::specfem3dOc(32), workloads::specfem3dCm(16),
      workloads::milcZdown(32), workloads::nasMgFace(32)};

  std::vector<FlattenRow> flatten_rows;
  bench::Table ftable({"Workload", "Count", "Blocks", "Flatten ns",
                       "Naive ns", "Compressed B", "Naive B", "Groups"});
  for (const auto& wl : types) {
    for (const std::size_t count : {1u, 8u, 64u, 256u, 1024u}) {
      const double flat_ns = timeNs([&] {
        const auto l = ddt::flatten(wl.type, count);
        g_sink += l.blockCount();
      });
      const double naive_ns = timeNs([&] {
        const auto segs = naiveFlatten(wl.type, count);
        g_sink += segs.size();
      });
      const auto layout = ddt::flatten(wl.type, count);
      const std::size_t naive_bytes =
          layout.blockCount() * sizeof(ddt::Segment);
      flatten_rows.push_back(FlattenRow{
          wl.name, count, layout.blockCount(), flat_ns, naive_ns,
          layout.compressedBytes(), naive_bytes, layout.groupCount()});
      const FlattenRow& r = flatten_rows.back();
      ftable.addRow({r.workload, std::to_string(r.count),
                     std::to_string(r.blocks), fmt1(r.flatten_ns),
                     fmt1(r.naive_ns), std::to_string(r.compressed_bytes),
                     std::to_string(r.naive_bytes),
                     std::to_string(r.groups)});
    }
  }
  ftable.print(std::cout);
  std::cout << "\nShape: compressed flatten ns and bytes stay ~flat as count "
               "grows (the body repetition is symbolic); the naive path "
               "grows linearly in count x blocks.\n";

  // ---- Pack throughput: compressed loop nests vs per-segment shadow ----
  bench::banner(std::cout,
                "Micro — packCpu over the compressed form vs naive "
                "per-segment copy (ns per payload byte)");
  std::vector<PackRow> pack_rows;
  bench::Table ptable(
      {"Workload", "Count", "Payload B", "Pack ns/B", "Naive ns/B"});
  for (const auto& wl : types) {
    for (const std::size_t count : {1u, 4u, 16u}) {
      const auto layout = ddt::flatten(wl.type, count);
      if (layout.minOffset() < 0 || layout.size() == 0) continue;
      std::vector<std::byte> origin(
          static_cast<std::size_t>(layout.endOffset()));
      Rng rng(7);
      for (auto& b : origin) b = static_cast<std::byte>(rng.below(256));
      std::vector<std::byte> packed(layout.size());

      const double pack_ns = timeNs([&] {
        g_sink += ddt::packCpu(layout, origin, packed);
      });
      const auto segs = naiveFlatten(wl.type, count);
      const double naive_ns = timeNs([&] {
        std::size_t out = 0;
        for (const ddt::Segment& s : segs) {
          std::copy_n(origin.begin() + s.offset, s.len, packed.begin() + out);
          out += s.len;
        }
        g_sink += out;
      });
      const auto bytes = static_cast<double>(layout.size());
      pack_rows.push_back(PackRow{wl.name, count, layout.size(),
                                  pack_ns / bytes, naive_ns / bytes});
      const PackRow& r = pack_rows.back();
      ptable.addRow({r.workload, std::to_string(r.count),
                     std::to_string(r.bytes), fmt1(r.pack_ns_per_byte * 1000),
                     fmt1(r.naive_ns_per_byte * 1000)});
    }
  }
  ptable.print(std::cout);
  std::cout << "\n(ns/B columns are scaled x1000: picoseconds per byte.)\n";

  // ---- Layout-cache count sweep: one flatten total ----
  bench::banner(std::cout,
                "Micro — LayoutCache count sweep (one flatten per type, "
                "hit rate >= 99%)");
  ddt::LayoutCache cache;
  const auto sweep_wl = workloads::milcZdown(32);
  constexpr std::size_t kSweepCounts = 512;
  for (std::size_t count = 1; count <= kSweepCounts; ++count) {
    g_sink += cache.get(sweep_wl.type, count)->blockCount();
  }
  const auto& cc = cache.counters();
  const double lookups = static_cast<double>(cc.hits + cc.misses);
  const double hit_rate = static_cast<double>(cc.hits) / lookups;
  std::cout << "lookups " << static_cast<std::size_t>(lookups) << ", misses "
            << cc.misses << " (element flattens), hits " << cc.hits
            << ", derivations " << cc.derivations << ", hit rate "
            << fmt1(hit_rate * 100.0) << "%, resident "
            << cache.residentBytes() << " B\n";

  // ---- JSON record ----
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_ddt_pack.json";
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot open " << json_path << " for writing\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"micro_ddt_pack\",\n"
       << "  \"claim\": \"flatten cost and layout memory are "
          "O(blocks-per-element) regardless of count (seed was linear in "
          "count x blocks); a count sweep costs one flatten through the "
          "layout cache\",\n"
       << "  \"flatten_sweep\": [\n";
  for (std::size_t i = 0; i < flatten_rows.size(); ++i) {
    const FlattenRow& r = flatten_rows[i];
    json << "    {\"workload\": \"" << r.workload << "\", \"count\": "
         << r.count << ", \"blocks\": " << r.blocks << ", \"flatten_ns\": "
         << r.flatten_ns << ", \"naive_flatten_ns\": " << r.naive_ns
         << ", \"compressed_bytes\": " << r.compressed_bytes
         << ", \"naive_bytes\": " << r.naive_bytes << ", \"groups\": "
         << r.groups << "}" << (i + 1 < flatten_rows.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"pack_sweep\": [\n";
  for (std::size_t i = 0; i < pack_rows.size(); ++i) {
    const PackRow& r = pack_rows[i];
    json << "    {\"workload\": \"" << r.workload << "\", \"count\": "
         << r.count << ", \"payload_bytes\": " << r.bytes
         << ", \"pack_ns_per_byte\": " << r.pack_ns_per_byte
         << ", \"naive_pack_ns_per_byte\": " << r.naive_ns_per_byte << "}"
         << (i + 1 < pack_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"cache_sweep\": {\"counts\": " << kSweepCounts
       << ", \"lookups\": " << static_cast<std::size_t>(lookups)
       << ", \"misses\": " << cc.misses << ", \"hits\": " << cc.hits
       << ", \"derivations\": " << cc.derivations << ", \"hit_rate\": "
       << hit_rate << ", \"resident_bytes\": " << cache.residentBytes()
       << "}\n}\n";
  std::cout << "\nrecord written to " << json_path << "\n";
  return 0;
}
