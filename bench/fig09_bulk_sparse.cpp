// Fig. 9 — Bulk non-contiguous inter-node transfer, SPARSE layout
// (specfem3D_cm), Lassen, sweeping the number of exchanged buffers 1..16
// (lower is better). Paper shape: the proposed fusion design beats every
// existing scheme at every buffer count, by up to ~5.9x, and the gap widens
// with more buffers (more launches amortized into one fused kernel).
#include <iostream>

#include "bench_util/sweeps.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

int main() {
  using namespace dkf;
  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync, schemes::Scheme::GpuAsync,
      schemes::Scheme::CpuGpuHybrid, schemes::Scheme::Proposed};
  const std::vector<int> neighbors = {1, 2, 4, 8, 16};

  for (const std::size_t dim : {16, 64}) {
    const auto wl = workloads::specfem3dCm(dim);
    bench::banner(std::cout,
                  "Fig. 9 — Bulk sparse inter-node exchange on Lassen "
                  "(specfem3D_cm, dim=" + std::to_string(dim) + ")",
                  "packed payload per op: " + formatBytes(wl.packedBytes()) +
                      ", " + std::to_string(ddt::flatten(wl.type, 1).blockCount()) +
                      " blocks; latency per iteration, lower is better");
    bench::neighborSweepTable(std::cout, hw::lassen(), wl, neighbors,
                              scheme_list);
  }
  std::cout << "\nPaper shape: Proposed lowest everywhere on sparse "
               "layouts; improvement grows with buffer count (up to 5.9x in "
               "the paper).\n";
  return 0;
}
