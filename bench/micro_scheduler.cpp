// Micro-benchmark for the §V-B claim: "The scheduling overhead of the
// proposed scheduler has insignificant overhead, as low as 2 us per
// message." Enqueues batches of pack requests through the fusion scheduler
// and reports scheduling + query cost per message, plus launch amortization
// (launch overhead per message as batches grow).
#include <iostream>
#include <vector>

#include "bench_util/table.hpp"
#include "common/check.hpp"
#include "core/scheduler.hpp"
#include "hw/machines.hpp"

int main() {
  using namespace dkf;
  bench::banner(std::cout,
                "Micro — Fusion scheduler overhead per message (§V-B claim: "
                "<= 2 us/message)");

  bench::Table table({"Batch size", "Scheduling/msg", "Sync(query)/msg",
                      "Launch/msg", "Fused kernels"});

  for (const std::size_t batch : {1u, 4u, 16u, 64u, 128u}) {
    sim::Engine eng;
    auto machine = hw::lassen();
    sim::CpuTimeline cpu(eng);
    gpu::Gpu gpu(eng, machine.node, 0);
    core::FusionPolicy policy;
    policy.threshold_bytes = 1u << 30;  // flush-driven batching
    policy.max_requests_per_kernel = 256;
    policy.list_capacity = 512;
    core::FusionScheduler sched(eng, cpu, gpu, policy);

    auto layout = std::make_shared<const ddt::Layout>(ddt::flatten(
        ddt::Datatype::contiguous(4096, ddt::Datatype::byte()), 1));
    auto src = gpu.memory().allocate(4096);
    auto dst = gpu.memory().allocate(4096);

    constexpr std::size_t kRounds = 16;
    eng.spawn([](sim::Engine& e, core::FusionScheduler& s, std::size_t b,
                 ddt::LayoutPtr l, gpu::MemSpan a,
                 gpu::MemSpan d) -> sim::Task<void> {
      for (std::size_t round = 0; round < kRounds; ++round) {
        std::vector<std::int64_t> uids;
        for (std::size_t i = 0; i < b; ++i) {
          core::FusionRequest req;
          req.op = core::FusionOp::Packing;
          req.layout = l;
          req.origin = a;
          req.target = d;
          const auto uid = co_await s.enqueue(std::move(req));
          DKF_CHECK(uid >= 0);
          uids.push_back(uid);
        }
        co_await s.flush();
        // Retire every request, as the progress engine would.
        for (const auto uid : uids) {
          while (!s.query(uid)) {
            co_await e.delay(us(1));  // progress-engine poll period
          }
        }
      }
    }(eng, sched, batch, layout, src, dst));
    eng.run();

    const double msgs = static_cast<double>(batch * kRounds);
    table.addRow({std::to_string(batch),
                  bench::cellUs(toUs(sched.breakdown().scheduling) / msgs),
                  bench::cellUs(toUs(sched.breakdown().synchronize) / msgs),
                  bench::cellUs(toUs(sched.breakdown().launching) / msgs),
                  std::to_string(sched.fusedKernelsLaunched())});
  }
  table.print(std::cout);
  std::cout << "\nShape: scheduling cost flat (~1 us enqueue + query), "
               "launch overhead per message shrinks ~1/batch as fusion "
               "amortizes the single 9.5 us launch.\n";
  return 0;
}
