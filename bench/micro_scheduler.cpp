// Micro-benchmark for the §V-B claim: "The scheduling overhead of the
// proposed scheduler has insignificant overhead, as low as 2 us per
// message." Enqueues batches of pack requests through the fusion scheduler
// and reports scheduling + query cost per message, plus launch amortization
// (launch overhead per message as batches grow).
//
// Second part: a request-list capacity sweep (64 ... 8192) measuring HOST
// wall-clock per enqueue+query. The request list is the simulator's own hot
// path — the seed implementation scanned O(capacity) on enqueue, claim and
// query, so host time per message grew linearly with list capacity and
// dominated bulk-transfer runs (Figs. 9-10 regime). With the O(1)
// structures it must stay roughly flat. The sweep emits a JSON record
// (wall-clock + virtual-time per message) to BENCH_scheduler.json (or the
// path given as argv[1]).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/table.hpp"
#include "common/check.hpp"
#include "core/scheduler.hpp"
#include "hw/machines.hpp"

namespace {

struct SweepRow {
  std::size_t capacity;
  std::size_t messages;
  double wall_ns_per_msg;       // host time per enqueue+flush+query cycle
  double virt_sched_ns_per_msg; // modeled scheduling+query time per message
  std::size_t fused_kernels;
};

/// One capacity point: fill the list, flush, retire everything — repeated
/// until ~`total_messages` messages have passed through. Returns host and
/// virtual per-message costs.
SweepRow runCapacityPoint(std::size_t capacity, std::size_t total_messages) {
  using namespace dkf;
  sim::Engine eng;
  auto machine = hw::lassen();
  sim::CpuTimeline cpu(eng);
  gpu::Gpu gpu(eng, machine.node, 0);
  core::FusionPolicy policy;
  policy.threshold_bytes = 1u << 30;  // flush-driven batching
  policy.max_requests_per_kernel = 256;
  policy.list_capacity = capacity;
  core::FusionScheduler sched(eng, cpu, gpu, policy);

  auto layout = std::make_shared<const ddt::Layout>(ddt::flatten(
      ddt::Datatype::contiguous(4096, ddt::Datatype::byte()), 1));
  auto src = gpu.memory().allocate(4096);
  auto dst = gpu.memory().allocate(4096);

  const std::size_t rounds = std::max<std::size_t>(1, total_messages / capacity);
  eng.spawn([](sim::Engine& e, core::FusionScheduler& s, std::size_t cap,
               std::size_t rnds, ddt::LayoutPtr l, gpu::MemSpan a,
               gpu::MemSpan d) -> sim::Task<void> {
    std::vector<std::int64_t> uids;
    uids.reserve(cap);
    for (std::size_t round = 0; round < rnds; ++round) {
      uids.clear();
      // Fill the list to capacity: every enqueue lands in an ever-fuller
      // ring, the worst case for the seed's tail/claim/query scans.
      for (std::size_t i = 0; i < cap; ++i) {
        core::FusionRequest req;
        req.op = core::FusionOp::Packing;
        req.layout = l;
        req.origin = a;
        req.target = d;
        const auto uid = co_await s.enqueue(std::move(req));
        DKF_CHECK(uid >= 0);
        uids.push_back(uid);
      }
      co_await s.flush();
      for (const auto uid : uids) {
        while (!s.query(uid)) {
          co_await e.delay(us(1));  // progress-engine poll period
        }
      }
    }
  }(eng, sched, capacity, rounds, layout, src, dst));

  const auto wall_begin = std::chrono::steady_clock::now();
  eng.run();
  const auto wall_end = std::chrono::steady_clock::now();

  const double msgs = static_cast<double>(rounds * capacity);
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(wall_end -
                                                           wall_begin)
          .count());
  return SweepRow{
      capacity, rounds * capacity, wall_ns / msgs,
      static_cast<double>(sched.breakdown().scheduling +
                          sched.breakdown().synchronize) /
          msgs,
      sched.fusedKernelsLaunched()};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dkf;
  bench::banner(std::cout,
                "Micro — Fusion scheduler overhead per message (§V-B claim: "
                "<= 2 us/message)");

  bench::Table table({"Batch size", "Scheduling/msg", "Sync(query)/msg",
                      "Launch/msg", "Fused kernels"});

  for (const std::size_t batch : {1u, 4u, 16u, 64u, 128u}) {
    sim::Engine eng;
    auto machine = hw::lassen();
    sim::CpuTimeline cpu(eng);
    gpu::Gpu gpu(eng, machine.node, 0);
    core::FusionPolicy policy;
    policy.threshold_bytes = 1u << 30;  // flush-driven batching
    policy.max_requests_per_kernel = 256;
    policy.list_capacity = 512;
    core::FusionScheduler sched(eng, cpu, gpu, policy);

    auto layout = std::make_shared<const ddt::Layout>(ddt::flatten(
        ddt::Datatype::contiguous(4096, ddt::Datatype::byte()), 1));
    auto src = gpu.memory().allocate(4096);
    auto dst = gpu.memory().allocate(4096);

    constexpr std::size_t kRounds = 16;
    eng.spawn([](sim::Engine& e, core::FusionScheduler& s, std::size_t b,
                 ddt::LayoutPtr l, gpu::MemSpan a,
                 gpu::MemSpan d) -> sim::Task<void> {
      for (std::size_t round = 0; round < kRounds; ++round) {
        std::vector<std::int64_t> uids;
        for (std::size_t i = 0; i < b; ++i) {
          core::FusionRequest req;
          req.op = core::FusionOp::Packing;
          req.layout = l;
          req.origin = a;
          req.target = d;
          const auto uid = co_await s.enqueue(std::move(req));
          DKF_CHECK(uid >= 0);
          uids.push_back(uid);
        }
        co_await s.flush();
        // Retire every request, as the progress engine would.
        for (const auto uid : uids) {
          while (!s.query(uid)) {
            co_await e.delay(us(1));  // progress-engine poll period
          }
        }
      }
    }(eng, sched, batch, layout, src, dst));
    eng.run();

    const double msgs = static_cast<double>(batch * kRounds);
    table.addRow({std::to_string(batch),
                  bench::cellUs(toUs(sched.breakdown().scheduling) / msgs),
                  bench::cellUs(toUs(sched.breakdown().synchronize) / msgs),
                  bench::cellUs(toUs(sched.breakdown().launching) / msgs),
                  std::to_string(sched.fusedKernelsLaunched())});
  }
  table.print(std::cout);
  std::cout << "\nShape: scheduling cost flat (~1 us enqueue + query), "
               "launch overhead per message shrinks ~1/batch as fusion "
               "amortizes the single 9.5 us launch.\n";

  // ---- Request-list capacity sweep (host wall-clock scaling) ----
  bench::banner(std::cout,
                "Micro — Request-list capacity sweep (host wall-clock per "
                "enqueue+query must stay ~flat in capacity)");

  constexpr std::size_t kTotalMessages = 32768;
  std::vector<SweepRow> sweep;
  bench::Table sweep_table({"Capacity", "Messages", "Wall ns/msg",
                            "Virtual sched ns/msg", "Fused kernels"});
  for (const std::size_t capacity :
       {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    // Warm-up pass absorbs first-touch allocation noise, measured pass counts.
    (void)runCapacityPoint(capacity, capacity);
    sweep.push_back(runCapacityPoint(capacity, kTotalMessages));
    const SweepRow& r = sweep.back();
    char wall[32], virt[32];
    std::snprintf(wall, sizeof wall, "%.1f", r.wall_ns_per_msg);
    std::snprintf(virt, sizeof virt, "%.1f", r.virt_sched_ns_per_msg);
    sweep_table.addRow({std::to_string(r.capacity), std::to_string(r.messages),
                        wall, virt, std::to_string(r.fused_kernels)});
  }
  sweep_table.print(std::cout);

  const std::string json_path = argc > 1 ? argv[1] : "BENCH_scheduler.json";
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot open " << json_path << " for writing\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"micro_scheduler_capacity_sweep\",\n"
       << "  \"claim\": \"wall-clock per enqueue+flush+query stays ~flat in "
          "request-list capacity (seed was linear: O(capacity) scans on "
          "enqueue, claim and query)\",\n"
       << "  \"messages_per_point\": " << kTotalMessages << ",\n"
       << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& r = sweep[i];
    json << "    {\"capacity\": " << r.capacity
         << ", \"messages\": " << r.messages << ", \"wall_ns_per_msg\": "
         << r.wall_ns_per_msg << ", \"virtual_scheduling_ns_per_msg\": "
         << r.virt_sched_ns_per_msg << ", \"fused_kernels\": "
         << r.fused_kernels << "}" << (i + 1 < sweep.size() ? "," : "")
         << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\ncapacity-sweep record written to " << json_path << "\n";
  return 0;
}
