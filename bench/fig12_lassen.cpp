// Fig. 12(a-d) — 3-D halo-exchange-style evaluation on Lassen: the four
// application kernels (specfem3D_oc, specfem3D_cm sparse; MILC, NAS_MG
// dense) with 32 non-blocking operations, swept over dimension size.
// Lower is better. Paper shape: proposed wins sparse by up to 8.5x/7.1x/
// 8.9x over Hybrid/Sync/Async; Hybrid wins only small dense (12c); for
// large dense NAS the proposed wins 1.4-5.8x (up to 80x over GPU-Async).
#include <iostream>

#include "bench_util/sweeps.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

int main() {
  using namespace dkf;
  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync, schemes::Scheme::GpuAsync,
      schemes::Scheme::CpuGpuHybrid, schemes::Scheme::Proposed,
      schemes::Scheme::ProposedTuned};

  struct Panel {
    const char* title;
    workloads::Workload (*make)(std::size_t);
    std::vector<std::size_t> dims;
  };
  const std::vector<Panel> panels = {
      {"Fig. 12(a) — specfem3D_oc (sparse, indexed)", workloads::specfem3dOc,
       {8, 16, 32, 64, 128}},
      {"Fig. 12(b) — specfem3D_cm (sparse, struct-on-indexed)",
       workloads::specfem3dCm, {8, 16, 32, 64, 128}},
      {"Fig. 12(c) — MILC (dense, nested vector)", workloads::milcZdown,
       {8, 16, 32, 64, 128}},
      {"Fig. 12(d) — NAS_MG (dense, vector)", workloads::nasMgFace,
       {16, 32, 64, 96, 128}},
  };

  for (const auto& panel : panels) {
    bench::banner(std::cout, panel.title,
                  "Lassen, 32 Isend/Irecv per iteration; latency, lower is "
                  "better");
    bench::schemeSweepTable(std::cout, hw::lassen(), panel.make, panel.dims,
                            scheme_list, /*n_ops=*/32);
  }
  std::cout << "\nPaper shape: Proposed/Proposed-Tuned lowest on both "
               "sparse panels and on large dense NAS; CPU-GPU-Hybrid wins "
               "only the small dense MILC corner (12c).\n";
  return 0;
}
