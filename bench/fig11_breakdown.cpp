// Fig. 11 — Time breakdown of the GPU-driven designs for the MILC workload
// with back-to-back 16 non-contiguous transfers between two GPU nodes on
// ABCI. Categories exactly as the paper defines them:
//   (Un)Pack    — pack/unpack kernel time,
//   Launching   — kernel-launch overhead,
//   Scheduling  — cudaEventRecord (GPU-Async) / scheduler enqueue+dequeue
//                 (Proposed); meaningless for GPU-Sync,
//   Sync.       — CPU-GPU completion synchronization,
//   Comm.       — observed (non-overlapped) communication time.
#include <iostream>

#include "bench_util/experiment.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

int main() {
  using namespace dkf;
  bench::banner(std::cout,
                "Fig. 11 — Time breakdown per scheme (MILC, 16 transfers, "
                "2 nodes, ABCI)",
                "per-iteration averages over 100 iterations");

  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync, schemes::Scheme::GpuAsync,
      schemes::Scheme::Proposed};

  bench::Table table({"Scheme", "(Un)Pack", "Launching", "Scheduling",
                      "Sync.", "Comm.", "Total elapsed"});
  for (const auto scheme : scheme_list) {
    bench::ExchangeConfig cfg;
    cfg.machine = hw::abci();
    cfg.scheme = scheme;
    cfg.workload = workloads::milcZdown(64);
    cfg.n_ops = 16;
    cfg.iterations = 100;
    cfg.warmup = 10;
    const auto r = bench::runBulkExchange(cfg);
    table.addRow({std::string(schemes::schemeName(scheme)),
                  bench::cellUs(toUs(r.breakdown.pack_unpack)),
                  bench::cellUs(toUs(r.breakdown.launching)),
                  bench::cellUs(toUs(r.breakdown.scheduling)),
                  bench::cellUs(toUs(r.breakdown.synchronize)),
                  bench::cellUs(toUs(r.breakdown.communication)),
                  bench::cellUs(toUs(r.total_elapsed))});
  }
  table.print(std::cout);
  std::cout
      << "\nPaper shape: GPU-Sync highest Sync.; GPU-Async high Launching +"
         " Scheduling + Sync.; Proposed lowest Launching and Sync. with"
         " scheduling <= 2 us per message and the best overlap.\n";
  return 0;
}
