// Micro-benchmark for the compiled FusionPlan API (ROADMAP item 1): the
// decide-once/execute-many amortization argument, measured on the HOST.
//
// Part 1 — plan *resolution* per message over repeat-layout traffic (the
// four paper workloads, each at three counts so the count-independent
// layout signature is doing real work):
//
//   per_message: every message declares a FusionPlan and compiles it
//                through the solver registry from scratch — the
//                decide-every-message baseline;
//   compiled:    every message resolves through one PlanCache
//                (compilePlanCached) — after the first sight of each
//                structure, compilation is a cache hit.
//
// This is a host-only tight loop (no simulation), so the comparison is
// deterministic: the cached path does a strict subset of the per-message
// path's work. The claim: compiled/cached ns/message <= per-message
// ns/message, with a hit rate approaching 1 on repeat-layout traffic.
//
// Part 2 — the same A/B embedded in full engine traffic (submitPlanStep,
// flush, done-polling): shows the plan slice is a small fraction of the
// ~2 us/message scheduling machinery, i.e. plan handling is never the
// bottleneck on either path.
//
// Part 3 — end-to-end: a two-rank bulk exchange through mpi::Runtime
// (whose submit sites all route through compiled plans) and the per-Proc
// plan-cache counters it leaves behind.
//
// Emits a JSON record to BENCH_fusion_plan.json (or argv[1]).
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/table.hpp"
#include "common/check.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "schemes/solver.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace dkf;

enum class Path { PerMessage, Compiled };

struct PathResult {
  std::size_t messages{0};
  double wall_ns_per_msg{0.0};
  std::size_t hits{0};
  std::size_t misses{0};
  double hitRate() const {
    const double total = static_cast<double>(hits + misses);
    return total > 0.0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// One traffic unit: a live layout (some count of some workload type) and
/// device buffers sized for it.
struct Msg {
  ddt::LayoutPtr layout;
  gpu::MemSpan origin;
  gpu::MemSpan packed;
};

/// Host-only resolution loop: `rounds` passes over the repeat-layout pool,
/// each message declaring its plan and resolving it (fresh compile vs one
/// shared PlanCache). No simulation — isolates the per-message decision
/// cost the compiled API exists to amortize.
PathResult runResolution(Path path, std::size_t rounds) {
  const auto hw = hw::lassen().node;
  std::vector<ddt::LayoutPtr> pool;
  for (const auto& wl : workloads::paperWorkloads(8)) {
    for (const std::size_t count : {1u, 2u, 4u}) {
      pool.push_back(
          std::make_shared<const ddt::Layout>(ddt::flatten(wl.type, count)));
    }
  }

  core::PlanCache cache;
  std::size_t live = 0;  // defeat dead-code elimination of the loop body
  const auto wall_begin = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    for (const ddt::LayoutPtr& layout : pool) {
      core::FusionPlan plan;
      plan.addPack(layout);
      const core::CompiledPlanPtr compiled =
          path == Path::Compiled
              ? schemes::compilePlanCached(cache, plan,
                                           schemes::Scheme::Proposed, hw)
              : schemes::compilePlan(plan, schemes::Scheme::Proposed, hw);
      live += compiled->steps.size();
    }
  }
  const auto wall_end = std::chrono::steady_clock::now();
  DKF_CHECK(live == rounds * pool.size());

  PathResult r;
  r.messages = rounds * pool.size();
  r.wall_ns_per_msg =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall_end - wall_begin)
                              .count()) /
      static_cast<double>(r.messages);
  r.hits = cache.hits();
  r.misses = cache.misses();
  return r;
}

/// Drive `rounds` passes over the repeat-layout pool through one engine,
/// compiling per message or through a shared PlanCache.
PathResult runPath(Path path, std::size_t rounds) {
  sim::Engine eng;
  auto machine = hw::lassen();
  sim::CpuTimeline cpu(eng);
  gpu::Gpu gpu(eng, machine.node, 0);
  auto engine = schemes::SolverRegistry::instance()
                    .at(schemes::Scheme::Proposed)
                    .makeEngine(eng, cpu, gpu, core::FusionPolicy{});

  // Twelve distinct live layouts but few distinct signatures: each paper
  // workload flattened at three counts. The cached path compiles at most
  // twice per workload (boundary-coalescing types hash count 1 apart from
  // counts >= 2), not once per (workload, count).
  std::vector<Msg> pool;
  for (const auto& wl : workloads::paperWorkloads(8)) {
    for (const std::size_t count : {1u, 2u, 4u}) {
      Msg m;
      m.layout = std::make_shared<const ddt::Layout>(ddt::flatten(wl.type, count));
      m.origin = gpu.memory().allocate(
          static_cast<std::size_t>(m.layout->endOffset()));
      m.packed = gpu.memory().allocate(m.layout->size());
      pool.push_back(std::move(m));
    }
  }

  core::PlanCache cache;
  eng.spawn([](sim::Engine& e, schemes::DdtEngine& ddt_engine, gpu::Gpu& g,
               core::PlanCache& c, Path p, const std::vector<Msg>& msgs,
               std::size_t rnds) -> sim::Task<void> {
    const hw::NodeSpec& hw = g.nodeSpec();
    for (std::size_t round = 0; round < rnds; ++round) {
      std::vector<schemes::Ticket> tickets;
      tickets.reserve(msgs.size());
      for (const Msg& m : msgs) {
        core::FusionPlan plan;
        plan.addPack(m.layout);
        const core::CompiledPlanPtr compiled =
            p == Path::Compiled
                ? schemes::compilePlanCached(c, plan, schemes::Scheme::Proposed,
                                             hw)
                : schemes::compilePlan(plan, schemes::Scheme::Proposed, hw);
        tickets.push_back(co_await ddt_engine.submitPlanStep(
            *compiled, 0, m.layout, nullptr, m.origin, m.packed));
      }
      co_await ddt_engine.flush();
      for (const schemes::Ticket& t : tickets) {
        while (!ddt_engine.done(t)) {
          co_await e.delay(us(1));  // progress-engine poll period
        }
      }
    }
  }(eng, *engine, gpu, cache, path, pool, rounds));

  const auto wall_begin = std::chrono::steady_clock::now();
  eng.run();
  const auto wall_end = std::chrono::steady_clock::now();

  PathResult r;
  r.messages = rounds * pool.size();
  r.wall_ns_per_msg =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              wall_end - wall_begin)
                              .count()) /
      static_cast<double>(r.messages);
  r.hits = cache.hits();
  r.misses = cache.misses();
  return r;
}

/// End-to-end: bulk isend/irecv rounds through the runtime (whose submit
/// sites all execute via compiled plans) with the count varying per op —
/// returns the plan-cache counters summed over both ranks.
PathResult runRuntimeExchange() {
  sim::Engine eng;
  hw::Cluster cluster(eng, hw::lassen(), 2);
  mpi::RuntimeConfig config;
  config.scheme = schemes::Scheme::Proposed;
  mpi::Runtime runtime(cluster, config);

  const auto wl = workloads::specfem3dCm(16);
  constexpr std::size_t kMaxCount = 4;
  constexpr int kOps = 16;
  constexpr int kRounds = 8;
  const std::size_t region = wl.type->extent() * kMaxCount;

  auto& a = runtime.proc(0);
  auto& b = runtime.proc(4);  // other node: inter-node bulk path
  std::vector<gpu::MemSpan> sa, ra, sb, rb;
  for (int i = 0; i < kOps; ++i) {
    sa.push_back(a.allocDevice(region));
    ra.push_back(a.allocDevice(region));
    sb.push_back(b.allocDevice(region));
    rb.push_back(b.allocDevice(region));
  }

  auto body = [](mpi::Proc& p, std::vector<gpu::MemSpan>& sends,
                 std::vector<gpu::MemSpan>& recvs, ddt::DatatypePtr type,
                 int peer) -> sim::Task<void> {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<mpi::RequestPtr> reqs;
      for (int i = 0; i < kOps; ++i) {
        // Counts cycle 1..kMaxCount: live layouts differ but collapse to
        // two signatures (count 1, counts >= 2), so each rank compiles at
        // most two pack and two unpack plans; everything else hits.
        const std::size_t count = 1 + (i % kMaxCount);
        reqs.push_back(co_await p.irecv(recvs[i], type, count, peer, i));
        reqs.push_back(co_await p.isend(sends[i], type, count, peer, i));
      }
      co_await p.waitall(std::move(reqs));
    }
  };
  eng.spawn(body(a, sa, ra, wl.type, 4));
  eng.spawn(body(b, sb, rb, wl.type, 0));
  eng.run();

  PathResult r;
  r.messages = static_cast<std::size_t>(2 * 2 * kOps * kRounds);
  r.hits = a.planCache().hits() + b.planCache().hits();
  r.misses = a.planCache().misses() + b.planCache().misses();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner(std::cout,
                "Micro — Compiled FusionPlan: cached-plan vs per-message "
                "compile (host wall-clock per message)");

  const auto fmt = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return std::string(buf);
  };

  // ---- Part 1: plan resolution, host-only ----
  constexpr std::size_t kResolutionRounds = 32768;
  constexpr int kTrials = 5;
  // Warm-up absorbs first-touch allocation noise; measured passes count.
  (void)runResolution(Path::PerMessage, 256);
  (void)runResolution(Path::Compiled, 256);
  // Alternate the paths and keep each one's best trial: the cached path
  // does a strict subset of the per-message path's work, so the minima
  // order deterministically.
  PathResult per_message, compiled;
  for (int trial = 0; trial < kTrials; ++trial) {
    const PathResult pm = runResolution(Path::PerMessage, kResolutionRounds);
    const PathResult cp = runResolution(Path::Compiled, kResolutionRounds);
    if (trial == 0 || pm.wall_ns_per_msg < per_message.wall_ns_per_msg) {
      per_message = pm;
    }
    if (trial == 0 || cp.wall_ns_per_msg < compiled.wall_ns_per_msg) {
      compiled = cp;
    }
  }

  bench::Table table(
      {"Path", "Messages", "Wall ns/msg", "Plan hits", "Plan misses",
       "Hit rate"});
  table.addRow({"per-message compile", std::to_string(per_message.messages),
                fmt(per_message.wall_ns_per_msg), "-", "-", "-"});
  table.addRow({"compiled (PlanCache)", std::to_string(compiled.messages),
                fmt(compiled.wall_ns_per_msg), std::to_string(compiled.hits),
                std::to_string(compiled.misses), fmt(compiled.hitRate())});
  table.print(std::cout);

  const double speedup =
      compiled.wall_ns_per_msg > 0.0
          ? per_message.wall_ns_per_msg / compiled.wall_ns_per_msg
          : 0.0;
  std::cout << "\nShape: the cached path resolves each layout structure once "
               "(8 misses across a 12-layout, 3-count pool: two signatures "
               "per workload, count 1 vs counts >= 2) and serves the rest "
               "from the PlanCache — host ns/message at or below the "
               "per-message compile path (speedup here: "
            << fmt(speedup) << "x).\n";

  // ---- Part 2: the same A/B embedded in full engine traffic ----
  bench::banner(std::cout,
                "Micro — Plan slice inside full engine traffic (submit + "
                "flush + done-poll)");
  constexpr std::size_t kEngineRounds = 4096;
  (void)runPath(Path::PerMessage, 64);
  (void)runPath(Path::Compiled, 64);
  const PathResult e2e_per_message = runPath(Path::PerMessage, kEngineRounds);
  const PathResult e2e_compiled = runPath(Path::Compiled, kEngineRounds);
  bench::Table e2e_table({"Path", "Messages", "Wall ns/msg"});
  e2e_table.addRow({"per-message compile",
                    std::to_string(e2e_per_message.messages),
                    fmt(e2e_per_message.wall_ns_per_msg)});
  e2e_table.addRow({"compiled (PlanCache)",
                    std::to_string(e2e_compiled.messages),
                    fmt(e2e_compiled.wall_ns_per_msg)});
  e2e_table.print(std::cout);
  std::cout << "\nShape: both paths sit within noise of each other — plan "
               "handling is a ~"
            << fmt(100.0 * (per_message.wall_ns_per_msg -
                            compiled.wall_ns_per_msg) /
                   e2e_compiled.wall_ns_per_msg)
            << "% slice of the ~2 us/message scheduling machinery, i.e. "
               "never the bottleneck on either path.\n";

  bench::banner(std::cout,
                "Micro — Plan-cache hit rate through mpi::Runtime (bulk "
                "exchange, counts cycling 1..4)");
  const PathResult runtime = runRuntimeExchange();
  bench::Table rt_table(
      {"Messages", "Plan hits", "Plan misses", "Hit rate"});
  rt_table.addRow({std::to_string(runtime.messages),
                   std::to_string(runtime.hits),
                   std::to_string(runtime.misses), fmt(runtime.hitRate())});
  rt_table.print(std::cout);
  std::cout << "\nShape: one compile per (op kind, layout structure) per "
               "rank; every further message — any count — is a hit.\n";

  const std::string json_path =
      argc > 1 ? argv[1] : "BENCH_fusion_plan.json";
  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot open " << json_path << " for writing\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"micro_fusion_plan\",\n"
       << "  \"claim\": \"repeat-layout traffic through the PlanCache runs "
          "at or below the per-message compile path's host ns/message, "
          "with a hit rate approaching 1\",\n"
       << "  \"trials\": " << kTrials << ",\n"
       << "  \"per_message\": {\"messages\": " << per_message.messages
       << ", \"wall_ns_per_msg\": " << per_message.wall_ns_per_msg << "},\n"
       << "  \"compiled\": {\"messages\": " << compiled.messages
       << ", \"wall_ns_per_msg\": " << compiled.wall_ns_per_msg
       << ", \"plan_hits\": " << compiled.hits
       << ", \"plan_misses\": " << compiled.misses
       << ", \"hit_rate\": " << compiled.hitRate() << "},\n"
       << "  \"speedup\": " << speedup << ",\n"
       << "  \"engine_traffic\": {\"per_message_ns_per_msg\": "
       << e2e_per_message.wall_ns_per_msg
       << ", \"compiled_ns_per_msg\": " << e2e_compiled.wall_ns_per_msg
       << ", \"messages\": " << e2e_compiled.messages << "},\n"
       << "  \"runtime_exchange\": {\"messages\": " << runtime.messages
       << ", \"plan_hits\": " << runtime.hits
       << ", \"plan_misses\": " << runtime.misses
       << ", \"hit_rate\": " << runtime.hitRate() << "}\n"
       << "}\n";
  std::cout << "\nfusion-plan record written to " << json_path << "\n";
  return 0;
}
