// Fig. 8 — Performance effects of the fused-kernel threshold, specfem3D_cm
// workload (sparse MPI indexed type), 32 continuous MPI_Isend/MPI_Irecv
// operations on Lassen.
//
// Sweeps the FusionPolicy threshold from 16 KB (under-fused: kernels launch
// too often) to 16 MB (over-fused: communication is delayed past the
// overlap window). Rows are input sizes, columns thresholds — the same grid
// the paper's surface shows, with the minimum (sweet spot) flagged.
#include <iostream>

#include "bench_util/experiment.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

int main() {
  using namespace dkf;
  bench::banner(std::cout,
                "Fig. 8 — Fused-kernel threshold sweep (specfem3D_cm, 32 "
                "Isend/Irecv, Lassen)",
                "under-fused (left) vs over-fused (right); paper sweet spot "
                "~512 KB");

  const std::vector<std::size_t> thresholds = {
      16 * 1024,       64 * 1024,        256 * 1024,      512 * 1024,
      1024 * 1024,     4 * 1024 * 1024,  16 * 1024 * 1024,
      64 * 1024 * 1024};
  const std::vector<std::size_t> dims = {8, 32, 128, 512, 2048, 4096};

  std::vector<std::string> headers{"dim (size)"};
  for (auto t : thresholds) headers.push_back(formatBytes(t));
  bench::Table table(std::move(headers));

  for (const auto dim : dims) {
    const auto wl = workloads::specfem3dCm(dim);
    std::vector<std::string> row{
        std::to_string(dim) + " (" + formatBytes(wl.packedBytes()) + ")"};
    double best = 0.0;
    std::size_t best_idx = 0;
    std::vector<double> lat(thresholds.size());
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      bench::ExchangeConfig cfg;
      cfg.machine = hw::lassen();
      cfg.scheme = schemes::Scheme::ProposedTuned;
      cfg.tuned_threshold = thresholds[i];
      cfg.workload = wl;
      cfg.n_ops = 32;
      cfg.iterations = 12;
      cfg.warmup = 3;
      lat[i] = bench::runBulkExchange(cfg).meanLatencyUs();
      if (i == 0 || lat[i] < best) {
        best = lat[i];
        best_idx = i;
      }
    }
    for (std::size_t i = 0; i < thresholds.size(); ++i) {
      row.push_back(bench::cellUs(lat[i]) + (i == best_idx ? " *" : ""));
    }
    table.addRow(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(*) best threshold per size. Paper shape: U-shaped — "
               "latency high at 16 KB (under-fused: one launch per few "
               "ops), minimal at a machine-dependent sweet spot (the paper "
               "reports ~512 KB on its testbeds; this calibration lands at "
               "0.25-4 MB), and degrading again for large inputs once "
               "over-fusing delays communication past the overlap window "
               "(right columns of the bottom rows).\n";
  return 0;
}
