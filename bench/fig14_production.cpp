// Fig. 14 — Comparison with production CUDA-aware MPI libraries on Lassen,
// normalized to SpectrumMPI (HIGHER is better). SpectrumMPI and OpenMPI+UCX
// have no optimized GPU datatype engine and fall back to one
// cudaMemcpyAsync per contiguous block; MVAPICH2-GDR adaptively mixes the
// CPU-GPU-Hybrid and GPU-Sync schemes; Proposed is this paper.
//
// The production trace plays through the batched message plane (the
// serving path); every case is replayed through the seed per-request
// coroutines as a shadow and the two runs must deliver byte-identical
// payloads (received-bytes hash) — the plane refactor is a scheduling
// change, never a data change.
//
// Paper shape: Proposed is ~1000x SpectrumMPI/OpenMPI on sparse layouts and
// up to 8.8x (sparse) / 4.3x (dense) over MVAPICH2-GDR.
#include <iostream>

#include "bench_util/experiment.hpp"
#include "bench_util/percentiles.hpp"
#include "bench_util/table.hpp"
#include "common/check.hpp"
#include "hw/machines.hpp"

namespace {

struct CaseResult {
  double mean_us{0.0};
  dkf::bench::PercentileSummary tail;
};

CaseResult latencyOf(dkf::schemes::Scheme scheme,
                     const dkf::workloads::Workload& wl) {
  dkf::bench::ExchangeConfig cfg;
  cfg.machine = dkf::hw::lassen();
  cfg.scheme = scheme;
  cfg.workload = wl;
  cfg.n_ops = 32;
  cfg.iterations = 20;
  cfg.warmup = 3;
  const auto batched = dkf::bench::runBulkExchange(cfg);

  // Shadow: the same trace through the seed per-request coroutines. The
  // two paths may schedule differently but must deliver the same bytes.
  cfg.batched_message_plane = false;
  const auto shadow = dkf::bench::runBulkExchange(cfg);
  DKF_CHECK_MSG(batched.recv_bytes_hash == shadow.recv_bytes_hash,
                "batched message plane delivered different payload bytes "
                "than the seed path (batched hash "
                    << batched.recv_bytes_hash << ", shadow "
                    << shadow.recv_bytes_hash << ")");

  CaseResult r;
  r.mean_us = batched.meanLatencyUs();
  r.tail = dkf::bench::summarizePercentiles(batched.latency_us);
  return r;
}

}  // namespace

int main() {
  using namespace dkf;
  bench::banner(std::cout,
                "Fig. 14 — Production MPI libraries on Lassen (normalized "
                "to SpectrumMPI; higher is better)",
                "SpectrumMPI/OpenMPI modeled as per-block cudaMemcpyAsync; "
                "MVAPICH2-GDR as adaptive hybrid; batched message plane "
                "with seed-path shadow (received-bytes hash asserted)");

  struct Case {
    const char* label;
    workloads::Workload wl;
  };
  const std::vector<Case> cases = {
      {"specfem3D_oc (sparse)", workloads::specfem3dOc(64)},
      {"specfem3D_cm (sparse)", workloads::specfem3dCm(64)},
      {"MILC (dense)", workloads::milcZdown(64)},
      {"NAS_MG (dense)", workloads::nasMgFace(64)},
  };
  const std::vector<schemes::Scheme> libs = {
      schemes::Scheme::NaiveCopy,    // SpectrumMPI / OpenMPI behaviour
      schemes::Scheme::AdaptiveGdr,  // MVAPICH2-GDR
      schemes::Scheme::Proposed,
  };

  bench::Table table({"Workload", "SpectrumMPI/OpenMPI", "MVAPICH2-GDR",
                      "Proposed", "Proposed vs GDR", "Proposed p50/p99/p999 us"});
  for (const auto& c : cases) {
    std::vector<CaseResult> lat;
    for (auto s : libs) lat.push_back(latencyOf(s, c.wl));
    const double base = lat[0].mean_us;
    const bench::PercentileSummary& tail = lat[2].tail;
    table.addRow({c.label, bench::cell(base / lat[0].mean_us, 2) + "x",
                  bench::cell(base / lat[1].mean_us, 2) + "x",
                  bench::cell(base / lat[2].mean_us, 2) + "x",
                  bench::cell(lat[1].mean_us / lat[2].mean_us, 2) + "x",
                  bench::cell(tail.p50, 1) + " / " + bench::cell(tail.p99, 1) +
                      " / " + bench::cell(tail.p999, 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: Proposed orders of magnitude above "
               "SpectrumMPI/OpenMPI on sparse layouts; up to ~8.8x (sparse)"
               " and ~4.3x (dense) over MVAPICH2-GDR.\n"
               "All cases: batched-plane payload hash == seed-path shadow "
               "hash.\n";
  return 0;
}
