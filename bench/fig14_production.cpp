// Fig. 14 — Comparison with production CUDA-aware MPI libraries on Lassen,
// normalized to SpectrumMPI (HIGHER is better). SpectrumMPI and OpenMPI+UCX
// have no optimized GPU datatype engine and fall back to one
// cudaMemcpyAsync per contiguous block; MVAPICH2-GDR adaptively mixes the
// CPU-GPU-Hybrid and GPU-Sync schemes; Proposed is this paper.
//
// Paper shape: Proposed is ~1000x SpectrumMPI/OpenMPI on sparse layouts and
// up to 8.8x (sparse) / 4.3x (dense) over MVAPICH2-GDR.
#include <iostream>

#include "bench_util/experiment.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

namespace {

double latencyOf(dkf::schemes::Scheme scheme, const dkf::workloads::Workload& wl) {
  dkf::bench::ExchangeConfig cfg;
  cfg.machine = dkf::hw::lassen();
  cfg.scheme = scheme;
  cfg.workload = wl;
  cfg.n_ops = 32;
  cfg.iterations = 20;
  cfg.warmup = 3;
  return dkf::bench::runBulkExchange(cfg).meanLatencyUs();
}

}  // namespace

int main() {
  using namespace dkf;
  bench::banner(std::cout,
                "Fig. 14 — Production MPI libraries on Lassen (normalized "
                "to SpectrumMPI; higher is better)",
                "SpectrumMPI/OpenMPI modeled as per-block cudaMemcpyAsync; "
                "MVAPICH2-GDR as adaptive hybrid");

  struct Case {
    const char* label;
    workloads::Workload wl;
  };
  const std::vector<Case> cases = {
      {"specfem3D_oc (sparse)", workloads::specfem3dOc(64)},
      {"specfem3D_cm (sparse)", workloads::specfem3dCm(64)},
      {"MILC (dense)", workloads::milcZdown(64)},
      {"NAS_MG (dense)", workloads::nasMgFace(64)},
  };
  const std::vector<schemes::Scheme> libs = {
      schemes::Scheme::NaiveCopy,    // SpectrumMPI / OpenMPI behaviour
      schemes::Scheme::AdaptiveGdr,  // MVAPICH2-GDR
      schemes::Scheme::Proposed,
  };

  bench::Table table({"Workload", "SpectrumMPI/OpenMPI", "MVAPICH2-GDR",
                      "Proposed", "Proposed vs GDR"});
  for (const auto& c : cases) {
    std::vector<double> lat;
    for (auto s : libs) lat.push_back(latencyOf(s, c.wl));
    const double base = lat[0];
    table.addRow({c.label, bench::cell(base / lat[0], 2) + "x",
                  bench::cell(base / lat[1], 2) + "x",
                  bench::cell(base / lat[2], 2) + "x",
                  bench::cell(lat[1] / lat[2], 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: Proposed orders of magnitude above "
               "SpectrumMPI/OpenMPI on sparse layouts; up to ~8.8x (sparse)"
               " and ~4.3x (dense) over MVAPICH2-GDR.\n";
  return 0;
}
