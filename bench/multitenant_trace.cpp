// Multi-tenant serving-plane bench (MODEL.md §14) — the isolation headline.
//
// Two lassen nodes, one shared internode link. Tenant 0 (the victim)
// serves a paced stream of small eager messages — mostly contiguous 1 KiB,
// every 8th a non-contiguous vector layout so the fusion/plan-cache path
// sees per-tenant traffic. Tenant 1 (the adversary) floods the same link
// with bulk 4 KiB eager bursts from the same rank pair. Per-round, the
// receiver samples every victim message's end-to-end latency
// (completed_at - posted_at on the recv).
//
// Modes over the same trace shape:
//
//   fifo_solo       victim alone, seed FIFO wire              (baseline)
//   fifo_adversary  victim + adversary, FIFO wire: the victim queues
//                   behind the adversary's entire backlog — unbounded
//                   p99 inflation (the failure mode)
//   drr_solo        victim alone, contention model on         (baseline)
//   drr_adversary   weighted wire sharing (4:1) + DRR delivery
//                   arbitration + per-tenant admission (256) +
//                   weighted fair batching: victim p99 inflation ≤ 2x
//   drr_faulted     drr_adversary under link-degradation windows
//                   (noisy-neighbor FaultPlan; reported, not asserted)
//   fifo_burst      calendar-tier exercise: one 16384-message adversary
//                   burst per round with delivery batching off, so the
//                   engine's pending set blows past the 8192 calendar
//                   threshold (peakPending / calendarEngagements asserted)
//
// The trace totals ~1M messages across modes. Emits BENCH_multitenant.json
// (or argv[1]); `--smoke` shrinks round counts only — per-round shape (and
// therefore the isolation ratios) is unchanged, so CI asserts the same
// bounds.
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include <chrono>

#include "bench_util/percentiles.hpp"
#include "bench_util/table.hpp"
#include "common/alloc_count.hpp"
#include "common/check.hpp"
#include "core/fusion_plan.hpp"
#include "ddt/datatype.hpp"
#include "fault/fault_plan.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "schemes/fusion_engine.hpp"
#include "sim/engine.hpp"

namespace {

using namespace dkf;

constexpr TenantId kVictim = 0;
constexpr TenantId kAdversary = 1;

constexpr std::size_t kVictimWindow = 256;  // victim messages per round
constexpr std::size_t kVictimBytes = 1024;  // contiguous victim payload
constexpr std::size_t kVictimRegion = 2048; // slot stride (fits the vector)
constexpr std::size_t kAdvBytes = 4096;     // adversary payload (still eager)
constexpr std::size_t kAdvWindow = 3072;    // adversary messages per round
constexpr std::size_t kBurstWindow = 16384; // calendar-tier burst
// Small on purpose: wire sharing alone cannot help the victim once a flood
// is already issued into the plane — admission caps how much of the
// adversary occupies it at a time, and backpressure holds the rest.
constexpr std::size_t kInflightLimit = 256;
constexpr int kAdvTagBase = 1 << 15;        // below kCollectiveTagBase

struct ModeCfg {
  std::string name;
  bool adversary{false};
  bool drr{false};     // contention + admission + weighted fair batching
  bool faulted{false};
  bool burst{false};   // delivery batching off, kBurstWindow adversary
  int rounds{0};
};

struct TenantReport {
  std::size_t messages{0};
  bench::PercentileSummary latency_us;
  double mean_us{0.0};
  // Admission counters summed over both ranks.
  std::size_t admitted{0};
  std::size_t peak_inflight{0};
  std::size_t throttle_waits{0};
  double throttled_us{0.0};
  std::size_t deliveries{0};  // LinkBatcher DRR deliveries (0 under FIFO)
  core::PlanCacheCounters plan_cache{};
  std::size_t fused_requests{0};
};

struct ModeResult {
  std::string name;
  std::size_t messages{0};
  double wall_s{0.0};
  TimeNs vtime{0};
  std::size_t events{0};
  std::size_t peak_pending{0};
  std::size_t calendar_engagements{0};
  std::size_t degraded_transfers{0};
  // Whole-run allocation accounting (zeros unless DKF_COUNT_ALLOCS) and
  // payload-pool telemetry (net/payload.hpp).
  std::size_t total_allocs{0};
  net::PayloadPoolCounters pool{};
  double pool_hit_rate{1.0};
  std::size_t pool_peak_live_buffers{0};
  std::size_t pool_peak_live_bytes{0};
  std::size_t pool_live_end{0};
  TenantReport tenants[2];
  double allocsPerMsg() const {
    return messages > 0
               ? static_cast<double>(total_allocs) /
                     static_cast<double>(messages)
               : 0.0;
  }
};

/// The victim's datatype for message `i`: mostly contiguous bytes, every
/// 8th a strided vector (32 blocks x 32 B, stride 64) so the pack/unpack
/// path, the plan cache, and weighted-fair batching carry tenant traffic.
bool victimStrided(std::size_t i) { return i % 8 == 7; }

// Each tenant submits from its own coroutine, as independent serving-plane
// clients would: the adversary blocking on admission backpressure must not
// stall the victim's submissions. The adversary task is spawned first so
// under FIFO its whole flood reserves the wire ahead of the victim.
sim::Task<void> victimSender(mpi::Proc& p, const ModeCfg& m,
                             int participants, gpu::MemSpan buf) {
  auto byte_t = ddt::Datatype::byte();
  auto vec_t = ddt::Datatype::vector(32, 32, 64, ddt::Datatype::byte());
  for (int round = 0; round < m.rounds; ++round) {
    co_await p.barrier(participants);
    std::vector<mpi::Proc::SendSpec> vic;
    vic.reserve(kVictimWindow);
    for (std::size_t i = 0; i < kVictimWindow; ++i) {
      const bool strided = victimStrided(i);
      vic.push_back({buf.subspan(i * kVictimRegion,
                                 strided ? kVictimRegion : kVictimBytes),
                     strided ? vec_t : byte_t, strided ? 1u : kVictimBytes,
                     1, static_cast<int>(i), kVictim});
    }
    co_await p.waitall(co_await p.isendBatch(std::move(vic)));
  }
}

sim::Task<void> adversarySender(mpi::Proc& p, const ModeCfg& m,
                                int participants, gpu::MemSpan buf) {
  auto byte_t = ddt::Datatype::byte();
  const std::size_t adv_n = m.burst ? kBurstWindow : kAdvWindow;
  for (int round = 0; round < m.rounds; ++round) {
    co_await p.barrier(participants);
    std::vector<mpi::Proc::SendSpec> adv;
    adv.reserve(adv_n);
    for (std::size_t j = 0; j < adv_n; ++j) {
      adv.push_back({buf.subspan(j * kAdvBytes, kAdvBytes), byte_t,
                     kAdvBytes, 1, kAdvTagBase + static_cast<int>(j),
                     kAdversary});
    }
    co_await p.waitall(co_await p.isendBatch(std::move(adv)));
  }
}

sim::Task<void> receiverBody(mpi::Proc& p, const ModeCfg& m,
                             int participants, gpu::MemSpan vic_buf,
                             gpu::MemSpan adv_buf,
                             std::vector<double>& vic_lat,
                             std::vector<double>& adv_lat) {
  auto byte_t = ddt::Datatype::byte();
  auto vec_t = ddt::Datatype::vector(32, 32, 64, ddt::Datatype::byte());
  const std::size_t adv_n = m.burst ? kBurstWindow : kAdvWindow;

  for (int round = 0; round < m.rounds; ++round) {
    co_await p.barrier(participants);
    std::vector<mpi::Proc::RecvSpec> vic;
    vic.reserve(kVictimWindow);
    for (std::size_t i = 0; i < kVictimWindow; ++i) {
      const bool strided = victimStrided(i);
      vic.push_back({vic_buf.subspan(i * kVictimRegion,
                                     strided ? kVictimRegion : kVictimBytes),
                     strided ? vec_t : byte_t, strided ? 1u : kVictimBytes,
                     0, static_cast<int>(i), kVictim});
    }
    std::vector<mpi::RequestPtr> reqs = co_await p.irecvBatch(std::move(vic));
    std::vector<mpi::RequestPtr> vic_keep = reqs;
    std::vector<mpi::RequestPtr> adv_keep;
    if (m.adversary) {
      std::vector<mpi::Proc::RecvSpec> adv;
      adv.reserve(adv_n);
      for (std::size_t j = 0; j < adv_n; ++j) {
        adv.push_back({adv_buf.subspan(j * kAdvBytes, kAdvBytes), byte_t,
                       kAdvBytes, 0, kAdvTagBase + static_cast<int>(j),
                       kAdversary});
      }
      adv_keep = co_await p.irecvBatch(std::move(adv));
      reqs.insert(reqs.end(), adv_keep.begin(), adv_keep.end());
    }
    co_await p.waitall(std::move(reqs));
    for (const mpi::RequestPtr& r : vic_keep) {
      vic_lat.push_back(toUs(r->completed_at - r->posted_at));
    }
    for (const mpi::RequestPtr& r : adv_keep) {
      adv_lat.push_back(toUs(r->completed_at - r->posted_at));
    }
  }
}

ModeResult runMode(const ModeCfg& m) {
  sim::Engine eng;
  hw::MachineSpec machine = hw::lassen();
  const std::size_t adv_n = m.burst ? kBurstWindow : kAdvWindow;
  const std::size_t needed = kVictimWindow * kVictimRegion * 2 +
                             (m.adversary ? adv_n * kAdvBytes * 2 : 0) +
                             (16u << 20);
  machine.node.gpu.arena_bytes =
      std::max(machine.node.gpu.arena_bytes, needed);
  machine.node.gpus_per_node = 1;
  hw::Cluster cluster(eng, machine, 2);

  std::optional<fault::FaultPlan> plan;
  if (m.faulted) {
    // Noisy-neighbor degradation: periodic windows where the shared link
    // streams at 35% — capacity loss, never packet loss (admission tokens
    // are released at delivery, so loss would need the reliability layer).
    fault::FaultSpec spec;
    for (int k = 0; k < 40; ++k) {
      spec.link_windows.push_back({us(500) + k * ms(2) + k * us(500),
                                   us(500) + k * ms(2) + k * us(500) +
                                       us(800),
                                   0.35});
    }
    plan.emplace(eng, spec);
    cluster.setFaultPlan(&*plan);
  }

  mpi::RuntimeConfig cfg;
  cfg.poll_interval = us(1);
  cfg.batched_message_plane = true;
  cfg.delivery_batching = !m.burst;  // burst mode floods the engine queue
  if (m.drr) {
    cfg.contention.enabled = true;
    cfg.contention.weights.set(kVictim, 4.0);
    cfg.contention.weights.set(kAdversary, 1.0);
    cfg.tenant_inflight_limit = kInflightLimit;
    cfg.weighted_fair_batching = true;
  }
  mpi::Runtime rt(cluster, cfg);

  std::array<gpu::MemSpan, 2> vic_bufs;
  std::array<gpu::MemSpan, 2> adv_bufs;
  for (int side = 0; side < 2; ++side) {
    vic_bufs[side] =
        rt.proc(side).allocDevice(kVictimWindow * kVictimRegion);
    if (m.adversary) {
      adv_bufs[side] = rt.proc(side).allocDevice(adv_n * kAdvBytes);
    }
  }

  std::vector<double> vic_lat, adv_lat;
  vic_lat.reserve(static_cast<std::size_t>(m.rounds) * kVictimWindow);

  const int participants = m.adversary ? 3 : 2;
  const std::uint64_t allocs0 = allocCount();
  const auto t0 = std::chrono::steady_clock::now();
  if (m.adversary) {
    eng.spawn(adversarySender(rt.proc(0), m, participants, adv_bufs[0]));
  }
  eng.spawn(victimSender(rt.proc(0), m, participants, vic_bufs[0]));
  eng.spawn(receiverBody(rt.proc(1), m, participants, vic_bufs[1],
                         adv_bufs[1], vic_lat, adv_lat));
  eng.run();
  const auto t1 = std::chrono::steady_clock::now();
  DKF_CHECK_MSG(eng.unfinishedTasks() == 0,
                "multitenant trace deadlocked with "
                    << eng.unfinishedTasks() << " suspended task(s)");

  ModeResult r;
  r.name = m.name;
  r.wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  r.vtime = eng.now();
  r.events = eng.processedEvents();
  r.peak_pending = eng.peakPending();
  r.calendar_engagements = eng.calendarEngagements();
  if (plan) r.degraded_transfers = plan->counters().degraded_transfers;
  r.messages = vic_lat.size() + adv_lat.size();
  r.total_allocs = static_cast<std::size_t>(allocCount() - allocs0);
  const net::PayloadPool& pool = cluster.fabric().payloadPool();
  r.pool = pool.counters();
  r.pool_hit_rate = pool.hitRate();
  r.pool_peak_live_buffers = pool.peakLiveBuffers();
  r.pool_peak_live_bytes = pool.peakLiveBytes();
  r.pool_live_end = pool.liveBuffers();

  r.tenants[kVictim].messages = vic_lat.size();
  r.tenants[kAdversary].messages = adv_lat.size();
  if (!vic_lat.empty()) {
    double sum = 0.0;
    for (double v : vic_lat) sum += v;
    r.tenants[kVictim].mean_us = sum / static_cast<double>(vic_lat.size());
    r.tenants[kVictim].latency_us =
        bench::summarizePercentiles(std::move(vic_lat));
  }
  if (!adv_lat.empty()) {
    double sum = 0.0;
    for (double v : adv_lat) sum += v;
    r.tenants[kAdversary].mean_us =
        sum / static_cast<double>(adv_lat.size());
    r.tenants[kAdversary].latency_us =
        bench::summarizePercentiles(std::move(adv_lat));
  }

  const auto deliveries = cluster.fabric().tenantDeliveries();
  for (int side = 0; side < 2; ++side) {
    mpi::Proc& p = rt.proc(side);
    const auto& stats = p.tenantStats();
    for (std::size_t t = 0; t < stats.size() && t < 2; ++t) {
      r.tenants[t].admitted += stats[t].admitted;
      r.tenants[t].peak_inflight =
          std::max(r.tenants[t].peak_inflight, stats[t].peak_inflight);
      r.tenants[t].throttle_waits += stats[t].throttle_waits;
      r.tenants[t].throttled_us += toUs(stats[t].throttled_ns);
    }
    const auto& pc = p.planCache().tenantCounters();
    for (std::size_t t = 0; t < pc.size() && t < 2; ++t) {
      r.tenants[t].plan_cache += pc[t];
    }
    if (auto* fe = dynamic_cast<schemes::FusionEngine*>(&p.ddtEngine())) {
      const auto& fused = fe->scheduler().counters().tenant_fused;
      for (std::size_t t = 0; t < fused.size() && t < 2; ++t) {
        r.tenants[t].fused_requests += fused[t];
      }
    }
  }
  for (std::size_t t = 0; t < deliveries.size() && t < 2; ++t) {
    r.tenants[t].deliveries = deliveries[t];
  }
  return r;
}

std::string fmt(double v, int prec = 2) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

void tenantJson(std::ofstream& json, const char* label,
                const TenantReport& t) {
  json << "      \"" << label << "\": {\"messages\": " << t.messages
       << ", \"latency_us\": {\"mean\": " << t.mean_us
       << ", \"p50\": " << t.latency_us.p50
       << ", \"p99\": " << t.latency_us.p99
       << ", \"p999\": " << t.latency_us.p999 << "}"
       << ", \"admitted\": " << t.admitted
       << ", \"peak_inflight\": " << t.peak_inflight
       << ", \"throttle_waits\": " << t.throttle_waits
       << ", \"throttled_us\": " << t.throttled_us
       << ", \"drr_deliveries\": " << t.deliveries
       << ", \"fused_requests\": " << t.fused_requests
       << ", \"plan_cache\": {\"hits\": " << t.plan_cache.hits
       << ", \"misses\": " << t.plan_cache.misses
       << ", \"fallbacks\": " << t.plan_cache.fallbacks << "}}";
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_multitenant.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }

  const int solo_rounds = smoke ? 10 : 200;
  const int adv_rounds = smoke ? 8 : 120;
  const int fault_rounds = smoke ? 4 : 40;
  const int burst_rounds = smoke ? 1 : 2;
  const std::vector<ModeCfg> modes = {
      {"fifo_solo", false, false, false, false, solo_rounds},
      {"fifo_adversary", true, false, false, false, adv_rounds},
      {"drr_solo", false, true, false, false, solo_rounds},
      {"drr_adversary", true, true, false, false, adv_rounds},
      {"drr_faulted", true, true, true, false, fault_rounds},
      {"fifo_burst", true, false, false, true, burst_rounds},
  };

  bench::banner(std::cout,
                "Multi-tenant serving plane — victim tail latency under an "
                "adversarial neighbor (2 lassen nodes, shared link)",
                "victim: 256-msg windows of 1 KiB eager (1/8 strided); "
                "adversary: 3072-msg 4 KiB floods; DRR weights 4:1, "
                "admission window 256");

  std::vector<ModeResult> results;
  std::size_t total_messages = 0;
  for (const ModeCfg& m : modes) {
    results.push_back(runMode(m));
    total_messages += results.back().messages;
    std::cout << "  [" << m.name << "] done: "
              << results.back().messages << " msgs, "
              << fmt(results.back().wall_s) << " s\n";
  }

  bench::Table table({"Mode", "Msgs", "Victim p50", "p99", "p999 us",
                      "Adv p99", "PeakPend", "CalEng", "Throttled",
                      "Wall s"});
  for (const ModeResult& r : results) {
    table.addRow({r.name, std::to_string(r.messages),
                  fmt(r.tenants[kVictim].latency_us.p50, 1),
                  fmt(r.tenants[kVictim].latency_us.p99, 1),
                  fmt(r.tenants[kVictim].latency_us.p999, 1),
                  fmt(r.tenants[kAdversary].latency_us.p99, 1),
                  std::to_string(r.peak_pending),
                  std::to_string(r.calendar_engagements),
                  std::to_string(r.tenants[kAdversary].throttle_waits),
                  fmt(r.wall_s)});
  }
  table.print(std::cout);

  const ModeResult& fifo_solo = results[0];
  const ModeResult& fifo_adv = results[1];
  const ModeResult& drr_solo = results[2];
  const ModeResult& drr_adv = results[3];
  const ModeResult& burst = results[5];

  const double fifo_ratio = fifo_adv.tenants[kVictim].latency_us.p99 /
                            fifo_solo.tenants[kVictim].latency_us.p99;
  const double drr_ratio = drr_adv.tenants[kVictim].latency_us.p99 /
                           drr_solo.tenants[kVictim].latency_us.p99;
  const double solo_vtime_ratio = static_cast<double>(drr_solo.vtime) /
                                  static_cast<double>(fifo_solo.vtime);

  std::cout << "\nIsolation (victim p99 inflation, adversary vs solo):"
            << "\n  FIFO wire: " << fmt(fifo_ratio, 1)
            << "x   (unbounded — the victim queues behind the whole flood)"
            << "\n  DRR+contention+admission: " << fmt(drr_ratio, 2)
            << "x   (bounded by the 4:1 wire share)"
            << "\nSingle-tenant cost of the serving plane (drr_solo vs "
               "fifo_solo virtual time): "
            << fmt(solo_vtime_ratio, 4) << "x"
            << "\nCalendar tier (fifo_burst): peak pending "
            << burst.peak_pending << ", engagements "
            << burst.calendar_engagements << "\n";

  std::ofstream json(json_path);
  if (!json) {
    std::cerr << "error: cannot open " << json_path << " for writing\n";
    return 1;
  }
  json << "{\n"
       << "  \"bench\": \"multitenant_trace\",\n"
       << "  \"claim\": \"weighted wire sharing + DRR delivery arbitration "
          "+ per-tenant admission bound victim p99 inflation under an "
          "adversarial neighbor to <= 2x, where the FIFO wire inflates it "
          "without bound; the single-tenant serving plane costs nothing "
          "measurable\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"total_messages\": " << total_messages << ",\n"
       << "  \"victim_window\": " << kVictimWindow << ",\n"
       << "  \"adversary_window\": " << kAdvWindow << ",\n"
       << "  \"burst_window\": " << kBurstWindow << ",\n"
       << "  \"tenant_weights\": [4, 1],\n"
       << "  \"tenant_inflight_limit\": " << kInflightLimit << ",\n"
       << "  \"alloc_counting\": "
       << (allocCountingEnabled() ? "true" : "false") << ",\n"
       << "  \"modes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModeResult& r = results[i];
    json << "    {\"mode\": \"" << r.name
         << "\", \"messages\": " << r.messages
         << ", \"wall_s\": " << r.wall_s
         << ", \"virtual_end_ns\": " << r.vtime
         << ", \"events\": " << r.events
         << ", \"peak_pending\": " << r.peak_pending
         << ", \"calendar_engagements\": " << r.calendar_engagements
         << ", \"degraded_transfers\": " << r.degraded_transfers
         << ", \"allocs_per_msg\": " << r.allocsPerMsg()
         << ", \"total_allocs\": " << r.total_allocs
         << ", \"payload_pool\": {\"captures\": " << r.pool.captures
         << ", \"inline_captures\": " << r.pool.inline_captures
         << ", \"slab_allocs\": " << r.pool.slab_allocs
         << ", \"slab_reuses\": " << r.pool.slab_reuses
         << ", \"oversize_allocs\": " << r.pool.oversize_allocs
         << ", \"trims\": " << r.pool.trims
         << ", \"hit_rate\": " << r.pool_hit_rate
         << ", \"peak_live_buffers\": " << r.pool_peak_live_buffers
         << ", \"peak_live_bytes\": " << r.pool_peak_live_bytes
         << ", \"live_at_end\": " << r.pool_live_end << "}"
         << ", \"tenants\": {\n";
    tenantJson(json, "victim", r.tenants[kVictim]);
    json << ",\n";
    tenantJson(json, "adversary", r.tenants[kAdversary]);
    json << "\n    }}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"isolation\": {\"fifo_victim_p99_inflation\": " << fifo_ratio
       << ", \"drr_victim_p99_inflation\": " << drr_ratio
       << ", \"single_tenant_vtime_ratio\": " << solo_vtime_ratio << "},\n"
       << "  \"calendar_tier\": {\"peak_pending\": " << burst.peak_pending
       << ", \"engagements\": " << burst.calendar_engagements << "}\n"
       << "}\n";
  std::cout << "record written to " << json_path << "\n";

  bool ok = true;
  if (drr_ratio > 2.0) {
    std::cerr << "error: DRR victim p99 inflation " << drr_ratio
              << "x exceeds the 2x isolation bound\n";
    ok = false;
  }
  if (fifo_ratio < 5.0) {
    std::cerr << "error: FIFO victim p99 inflation " << fifo_ratio
              << "x below 5x — the adversary is not adversarial enough\n";
    ok = false;
  }
  if (burst.peak_pending <= 8192 || burst.calendar_engagements == 0) {
    std::cerr << "error: fifo_burst never engaged the calendar tier (peak "
              << burst.peak_pending << ", engagements "
              << burst.calendar_engagements << ")\n";
    ok = false;
  }
  if (solo_vtime_ratio < 0.98 || solo_vtime_ratio > 1.02) {
    std::cerr << "error: single-tenant serving plane changed virtual time "
              << "by " << solo_vtime_ratio << "x\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
