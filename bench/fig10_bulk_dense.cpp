// Fig. 10 — Bulk non-contiguous inter-node transfer, DENSE layout (MILC),
// Lassen, sweeping buffers 1..16 (lower is better). Paper shape: for small
// dense layouts CPU-GPU-Hybrid can actually win (GDRCopy removes the GPU
// driver entirely), while the proposed design still beats GPU-Sync and
// GPU-Async — and GPU-Async runs BEHIND GPU-Sync because its event
// bookkeeping adds driver calls the short kernels cannot hide.
#include <iostream>

#include "bench_util/sweeps.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

int main() {
  using namespace dkf;
  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync, schemes::Scheme::GpuAsync,
      schemes::Scheme::CpuGpuHybrid, schemes::Scheme::Proposed};
  const std::vector<int> neighbors = {1, 2, 4, 8, 16};

  for (const std::size_t dim : {16, 64}) {
    const auto wl = workloads::milcZdown(dim);
    bench::banner(std::cout,
                  "Fig. 10 — Bulk dense inter-node exchange on Lassen "
                  "(MILC, dim=" + std::to_string(dim) + ")",
                  "packed payload per op: " + formatBytes(wl.packedBytes()) +
                      ", " + std::to_string(ddt::flatten(wl.type, 1).blockCount()) +
                      " blocks; latency per iteration, lower is better");
    bench::neighborSweepTable(std::cout, hw::lassen(), wl, neighbors,
                              scheme_list);
  }
  std::cout << "\nPaper shape: CPU-GPU-Hybrid best for small dense data; "
               "Proposed beats GPU-Sync/GPU-Async everywhere; GPU-Async "
               "trails GPU-Sync (extra cudaEvent* overhead).\n";
  return 0;
}
