// Fault-injection sweep: mean exchange latency per scheme as the packet
// loss rate rises from 0 to 20%, with the reliable-transport layer enabled
// (EXPERIMENTS.md loss-sweep appendix). Every cell is a full 2-rank bulk
// exchange of the dense MILC workload under a seeded FaultPlan; the rows
// also report how hard the reliability layer had to work (drops observed,
// retransmissions issued). Cells are independent simulations, so they fan
// out over the parallel sweep pool and merge in index order — the table
// and JSON are byte-identical to a serial run. Emits a JSON record per
// cell to BENCH_faults.json (or the path given as argv[1]).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util/experiment.hpp"
#include "bench_util/parallel.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

int main(int argc, char** argv) {
  using namespace dkf;

  const std::vector<double> loss_rates = {0.0, 0.02, 0.05, 0.1, 0.2};

  bench::banner(std::cout,
                "Fault sweep — latency vs packet loss, retransmission on",
                "milc_zdown dim=64, 16 buffers; data+control loss at the "
                "given rate, per-run seeded FaultPlan");

  const std::vector<schemes::Scheme> scheme_list(std::begin(schemes::kAllSchemes),
                                                 std::end(schemes::kAllSchemes));
  const std::size_t n_cells = scheme_list.size() * loss_rates.size();
  std::vector<bench::ExchangeResult> results(n_cells);
  bench::parallelFor(n_cells, [&](std::size_t cell) {
    const schemes::Scheme scheme = scheme_list[cell / loss_rates.size()];
    const double loss = loss_rates[cell % loss_rates.size()];
    // The workload is built inside the cell: datatype trees lazily cache
    // their description, which must not be shared across pool threads.
    const auto wl = workloads::milcZdown(64);
    bench::ExchangeConfig cfg;
    cfg.machine = hw::lassen();
    cfg.scheme = scheme;
    cfg.workload = wl;
    cfg.n_ops = 16;
    cfg.iterations = 10;
    cfg.warmup = 2;
    cfg.reliability.enabled = true;
    cfg.reliability.base_timeout = us(40);
    cfg.reliability.max_timeout = us(2000);
    cfg.reliability.max_retries = 60;
    if (loss > 0.0) {
      cfg.inject_faults = true;
      cfg.faults.seed = 0x5EED + static_cast<std::uint64_t>(loss * 1000);
      cfg.faults.data_loss = loss;
      cfg.faults.control_loss = loss;
      cfg.watchdog = sec(5);
    }
    results[cell] = bench::runBulkExchange(cfg);
  });

  const auto wl_name = workloads::milcZdown(64).name;
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_faults.json";
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"faults_loss_sweep\",\n  \"workload\": \""
       << wl_name << "\",\n  \"rows\": [\n";

  bench::Table table({"scheme", "loss", "mean us", "data drops",
                      "ctrl drops", "retrans", "dup ignored"});
  for (std::size_t cell = 0; cell < n_cells; ++cell) {
    const schemes::Scheme scheme = scheme_list[cell / loss_rates.size()];
    const double loss = loss_rates[cell % loss_rates.size()];
    const bench::ExchangeResult& r = results[cell];
    table.addRow({std::string(schemes::schemeName(scheme)),
                  bench::cell(loss), bench::cellUs(r.meanLatencyUs()),
                  std::to_string(r.fault_counters.data_drops),
                  std::to_string(r.fault_counters.control_drops),
                  std::to_string(r.transport.retransmissions),
                  std::to_string(r.transport.duplicates_ignored)});
    if (cell > 0) json << ",\n";
    json << "    {\"scheme\": \"" << schemes::schemeName(scheme)
         << "\", \"loss\": " << loss
         << ", \"mean_us\": " << r.meanLatencyUs()
         << ", \"data_drops\": " << r.fault_counters.data_drops
         << ", \"control_drops\": " << r.fault_counters.control_drops
         << ", \"retransmissions\": " << r.transport.retransmissions
         << ", \"duplicates_ignored\": " << r.transport.duplicates_ignored
         << ", \"end_time_ns\": " << r.end_time << "}";
  }
  json << "\n  ]\n}\n";
  table.print(std::cout);
  std::cout << "\nShape: the loss-free rows price the reliability layer "
               "itself (eager ACK round-trips; rendezvous is unchanged); "
               "latency rises with loss as retransmission timeouts are "
               "paid, but every cell completes and no scheme hangs.\n"
               "  JSON -> "
            << json_path << "\n";
  return 0;
}
