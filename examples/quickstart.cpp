// Quickstart: send a strided GPU matrix column block between two simulated
// GPU nodes with the dynamic-kernel-fusion MPI runtime, and verify the
// bytes landed.
//
//   1. Build a Lassen-like 2-node cluster.
//   2. Create an MPI runtime whose DDT engine is the proposed fusion scheme.
//   3. Describe the non-contiguous data with an MPI vector datatype.
//   4. Isend/Irecv + Waitall from two rank coroutines.
//
// Build & run:  ./build/examples/quickstart
#include <cstring>
#include <iostream>

#include "ddt/datatype.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"

using namespace dkf;

int main() {
  // 1. Hardware: two Lassen nodes (4x V100 + NVLink2 + IB EDR each).
  sim::Engine engine;
  hw::Cluster cluster(engine, hw::lassen(), /*node_count=*/2);

  // 2. Runtime: one rank per GPU; the Proposed fusion engine handles all
  //    derived-datatype processing.
  mpi::RuntimeConfig config;
  config.scheme = schemes::Scheme::Proposed;
  mpi::Runtime runtime(cluster, config);

  // 3. Datatype: 4 columns of a 512x512 double matrix (a classic halo).
  const std::size_t rows = 512, cols = 512, ncols = 4;
  auto coltype = ddt::Datatype::vector(rows, ncols, cols,
                                       ddt::Datatype::float64());
  std::cout << "datatype: " << coltype->describe() << "\n"
            << "payload : " << formatBytes(coltype->size()) << " out of a "
            << formatBytes(rows * cols * 8) << " matrix\n";

  // Device buffers on rank 0 (node 0) and rank 4 (first GPU of node 1).
  auto& sender = runtime.proc(0);
  auto& receiver = runtime.proc(4);
  auto smat = sender.allocDevice(rows * cols * 8);
  auto rmat = receiver.allocDevice(rows * cols * 8);
  for (std::size_t i = 0; i < smat.size(); ++i) {
    smat.bytes[i] = static_cast<std::byte>(i * 7 % 251);
  }

  // 4. Rank programs as coroutines.
  TimeNs done_at = 0;
  engine.spawn([](mpi::Proc& p, gpu::MemSpan buf,
                  ddt::DatatypePtr type) -> sim::Task<void> {
    auto req = co_await p.isend(buf, type, 1, /*dst=*/4, /*tag=*/0);
    co_await p.wait(req);
  }(sender, smat, coltype));
  engine.spawn([](mpi::Proc& p, gpu::MemSpan buf, ddt::DatatypePtr type,
                  TimeNs& out) -> sim::Task<void> {
    auto req = co_await p.irecv(buf, type, 1, /*src=*/0, /*tag=*/0);
    co_await p.wait(req);
    out = p.engine().now();
  }(receiver, rmat, coltype, done_at));
  engine.run();

  // Verify every column byte arrived intact.
  const auto layout = ddt::flatten(coltype, 1);
  for (const auto& seg : layout.materialize()) {
    if (std::memcmp(rmat.bytes.data() + seg.offset,
                    smat.bytes.data() + seg.offset, seg.len) != 0) {
      std::cerr << "FAILED: mismatch at offset " << seg.offset << "\n";
      return 1;
    }
  }
  std::cout << "transfer complete at t=" << formatDuration(done_at)
            << " (virtual); " << layout.blockCount()
            << " strided blocks verified byte-exact\n";
  return 0;
}
