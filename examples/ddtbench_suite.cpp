// ddtbench-style suite runner: every paper workload x every DDT-processing
// scheme on both machines, in one compact report. A quick way to see the
// whole evaluation landscape (and the machine-dependent crossovers) without
// running the individual figure benches.
//
// Build & run:  ./build/examples/ddtbench_suite
#include <iostream>

#include "bench_util/experiment.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

using namespace dkf;

int main() {
  const std::vector<std::pair<const char*, hw::MachineSpec>> machines = {
      {"Lassen", hw::lassen()},
      {"ABCI", hw::abci()},
  };
  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync,      schemes::Scheme::GpuAsync,
      schemes::Scheme::CpuGpuHybrid, schemes::Scheme::NaiveCopy,
      schemes::Scheme::AdaptiveGdr,  schemes::Scheme::Proposed,
  };

  for (const auto& [mname, machine] : machines) {
    bench::banner(std::cout,
                  std::string("ddtbench suite on ") + mname +
                      " — 16 bulk exchanges per iteration, dim=64",
                  machine.name);
    std::vector<std::string> headers{"Workload (packed)"};
    for (auto s : scheme_list) headers.emplace_back(schemes::schemeName(s));
    bench::Table table(std::move(headers));

    for (const auto& wl : workloads::paperWorkloads(64)) {
      std::vector<std::string> row{wl.name + " (" +
                                   formatBytes(wl.packedBytes()) + ")"};
      for (const auto scheme : scheme_list) {
        bench::ExchangeConfig cfg;
        cfg.machine = machine;
        cfg.scheme = scheme;
        cfg.workload = wl;
        cfg.n_ops = 16;
        cfg.iterations = 15;
        cfg.warmup = 3;
        row.push_back(
            bench::cellUs(bench::runBulkExchange(cfg).meanLatencyUs()));
      }
      table.addRow(std::move(row));
    }
    table.print(std::cout);
  }
  std::cout << "\nReading guide: sparse rows (specfem3D_*) — Proposed wins "
               "big; dense rows — CPU-GPU-Hybrid competitive on Lassen "
               "(GDRCopy) but not on ABCI; NaiveCopy (SpectrumMPI/OpenMPI "
               "behaviour) is orders of magnitude off on sparse layouts.\n";
  return 0;
}
