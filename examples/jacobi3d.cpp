// jacobi3d: a complete mini-application on the dkf stack.
//
// Eight ranks (2x2x2) solve a 3-D Laplace problem with Jacobi iteration:
// every step each rank (a) exchanges its six ghost faces through the
// fusion-enabled MPI runtime (subarray datatypes — the paper's bulk
// non-contiguous pattern), (b) relaxes its interior on the "GPU", and
// (c) agrees on the global residual with an allreduce. Fixed boundary
// conditions (hot x=0 face on the boundary ranks); the solve converges and
// the example reports iterations, final residual, and the communication
// share under the fusion engine vs GPU-Sync.
//
// Build & run:  ./build/examples/jacobi3d
#include <cmath>
#include <cstring>
#include <iostream>
#include <vector>

#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/collectives.hpp"
#include "workloads/halo_exchanger.hpp"

using namespace dkf;

namespace {

constexpr std::size_t kN = 16;       // owned cells per dim per rank
constexpr std::size_t kGhost = 1;
constexpr std::size_t kTotal = kN + 2 * kGhost;
constexpr int kMaxIters = 60;
constexpr double kTolerance = 1e-3;

double& cellAt(gpu::MemSpan block, std::size_t x, std::size_t y,
               std::size_t z) {
  return reinterpret_cast<double*>(
      block.bytes.data())[(x * kTotal + y) * kTotal + z];
}

/// One Jacobi sweep over the interior; returns the local residual (max
/// update magnitude). The compute itself is modeled as GPU busy time.
double relaxInterior(gpu::MemSpan block, std::vector<double>& scratch) {
  double residual = 0.0;
  scratch.resize(kTotal * kTotal * kTotal);
  auto* cur = reinterpret_cast<double*>(block.bytes.data());
  std::memcpy(scratch.data(), cur, scratch.size() * 8);
  auto at = [&](std::size_t x, std::size_t y, std::size_t z) -> double {
    return scratch[(x * kTotal + y) * kTotal + z];
  };
  for (std::size_t x = kGhost; x < kGhost + kN; ++x) {
    for (std::size_t y = kGhost; y < kGhost + kN; ++y) {
      for (std::size_t z = kGhost; z < kGhost + kN; ++z) {
        const double next =
            (at(x - 1, y, z) + at(x + 1, y, z) + at(x, y - 1, z) +
             at(x, y + 1, z) + at(x, y, z - 1) + at(x, y, z + 1)) /
            6.0;
        residual = std::max(residual, std::abs(next - at(x, y, z)));
        cur[(x * kTotal + y) * kTotal + z] = next;
      }
    }
  }
  return residual;
}

struct Result {
  int iterations{0};
  double residual{0.0};
  TimeNs elapsed{0};
  double mean_edge{0.0};
};

sim::Task<void> rankSolve(mpi::Proc& proc, workloads::HaloExchanger& ex,
                          gpu::MemSpan block, gpu::MemSpan residual_buf,
                          Result& out) {
  // Boundary condition: ranks on the -x face hold their x=0 ghost at 100.
  const bool hot = ex.coords()[0] == 0;
  std::vector<double> scratch;

  co_await proc.barrier();
  const TimeNs t0 = proc.engine().now();
  int iter = 0;
  double global_residual = 1.0;
  for (; iter < kMaxIters && global_residual > kTolerance; ++iter) {
    co_await ex.exchange();
    if (hot) {
      for (std::size_t y = 0; y < kTotal; ++y) {
        for (std::size_t z = 0; z < kTotal; ++z) {
          cellAt(block, 0, y, z) = 100.0;
        }
      }
    }
    // Model the relaxation kernel on the GPU: one launch + a stencil pass
    // over kN^3 cells at ~1/4 of HBM peak (7-point stencil reads).
    const auto& spec = proc.gpu().spec();
    co_await proc.cpu().busy(spec.kernel_launch_overhead);
    const double stencil_bytes = static_cast<double>(kN * kN * kN) * 8 * 8;
    const auto kernel_time = static_cast<DurationNs>(
        stencil_bytes / (spec.hbm_bandwidth.bytesPerNs() * 0.25));
    co_await proc.engine().delay(kernel_time);
    const double local = relaxInterior(block, scratch);

    // Global convergence check.
    *reinterpret_cast<double*>(residual_buf.bytes.data()) = local;
    co_await mpi::allreduce(proc, residual_buf, 1, mpi::ReduceType::Float64,
                            mpi::ReduceOp::Max);
    global_residual =
        *reinterpret_cast<const double*>(residual_buf.bytes.data());
  }

  if (proc.rank() == 0) {
    out.iterations = iter;
    out.residual = global_residual;
    out.elapsed = proc.engine().now() - t0;
  }
  // Sample the solution along the x axis on the hot boundary rank.
  if (hot && proc.rank() == 0) {
    double sum = 0.0;
    for (std::size_t x = kGhost; x < kGhost + kN; ++x) {
      sum += cellAt(block, x, kTotal / 2, kTotal / 2);
    }
    out.mean_edge = sum / kN;
  }
}

Result runSolve(schemes::Scheme scheme) {
  sim::Engine engine;
  auto machine = hw::lassen();
  machine.node.gpu.arena_bytes = kTotal * kTotal * kTotal * 8 + (8u << 20);
  hw::Cluster cluster(engine, machine, 2);
  mpi::RuntimeConfig config;
  config.scheme = scheme;
  mpi::Runtime runtime(cluster, config);

  Result result;
  std::vector<gpu::MemSpan> blocks;
  std::vector<std::unique_ptr<workloads::HaloExchanger>> exchangers;
  for (int r = 0; r < runtime.worldSize(); ++r) {
    auto block = runtime.proc(r).allocDevice(kTotal * kTotal * kTotal * 8);
    std::memset(block.bytes.data(), 0, block.size());
    auto rbuf = runtime.proc(r).allocDevice(64);
    blocks.push_back(block);
    exchangers.push_back(std::make_unique<workloads::HaloExchanger>(
        runtime.proc(r), block,
        workloads::HaloExchanger::Config{kN, kGhost, {2, 2, 2}}));
    engine.spawn(rankSolve(runtime.proc(r), *exchangers.back(), block, rbuf,
                           result));
  }
  engine.run();
  if (engine.unfinishedTasks() != 0) {
    std::cerr << "solver deadlocked\n";
    std::exit(1);
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "3-D Jacobi mini-app: 2x2x2 ranks x " << kN
            << "^3 cells, hot x=0 boundary, halo exchange + allreduce per "
               "iteration\n\n";
  const Result fused = runSolve(schemes::Scheme::Proposed);
  const Result sync = runSolve(schemes::Scheme::GpuSync);

  std::cout << (fused.residual <= kTolerance ? "converged in "
                                             : "stopped after ")
            << fused.iterations << " iterations (residual "
            << fused.residual
            << "), mean solution along hot axis: " << fused.mean_edge
            << "\n\n";
  if (fused.iterations != sync.iterations ||
      std::abs(fused.residual - sync.residual) > 1e-12) {
    std::cerr << "FAILED: schemes disagree on the numerical result\n";
    return 1;
  }
  std::cout << "numerics identical under both schemes (bit-stable halo "
               "exchange)\n\n"
            << "time to solution (virtual):\n"
            << "  Proposed (kernel fusion): " << formatDuration(fused.elapsed)
            << "\n"
            << "  GPU-Sync baseline:        " << formatDuration(sync.elapsed)
            << "\n"
            << "  speedup:                  "
            << static_cast<double>(sync.elapsed) /
                   static_cast<double>(fused.elapsed)
            << "x\n";
  return 0;
}
