// MILC-style lattice-QCD boundary exchange.
//
// Models the su3 z-face exchange of a 4-D lattice between two GPU nodes:
// every iteration, each rank sends its z-down face (a nested-vector MPI
// datatype over 48-byte su3 vectors) to its neighbor and receives the
// neighbor's face — the "dense layout" workload of the paper's Figs. 10,
// 12(c), 13(c). The example sweeps the lattice size and prints a
// scheme-comparison table, reproducing the dense-layout crossover: the
// CPU-GPU-Hybrid GDRCopy path wins while faces are small, the fusion
// engine takes over as they grow.
//
// Build & run:  ./build/examples/milc_qcd
#include <iostream>

#include "bench_util/experiment.hpp"
#include "bench_util/table.hpp"
#include "hw/machines.hpp"

using namespace dkf;

int main() {
  std::cout << "MILC lattice-QCD z-face exchange (dense nested-vector "
               "datatype over su3 vectors)\n";

  const std::vector<schemes::Scheme> scheme_list = {
      schemes::Scheme::GpuSync,
      schemes::Scheme::CpuGpuHybrid,
      schemes::Scheme::Proposed,
      schemes::Scheme::ProposedHybrid,  // the Related-Work combination
  };
  bench::Table table({"lattice dim", "face size", "GPU-Sync", "CPU-GPU-Hybrid",
                      "Proposed", "Proposed+Hybrid", "winner"});

  for (const std::size_t dim : {8, 16, 32, 64, 128, 256}) {
    const auto wl = workloads::milcZdown(dim);
    std::vector<double> lat;
    for (const auto scheme : scheme_list) {
      bench::ExchangeConfig cfg;
      cfg.machine = hw::lassen();
      cfg.scheme = scheme;
      cfg.workload = wl;
      cfg.n_ops = 8;  // 8 concurrent face exchanges (4-D lattice directions)
      cfg.iterations = 25;
      cfg.warmup = 5;
      lat.push_back(bench::runBulkExchange(cfg).meanLatencyUs());
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < lat.size(); ++i) {
      if (lat[i] < lat[best]) best = i;
    }
    table.addRow({std::to_string(dim), formatBytes(wl.packedBytes()),
                  bench::cellUs(lat[0]), bench::cellUs(lat[1]),
                  bench::cellUs(lat[2]), bench::cellUs(lat[3]),
                  std::string(schemes::schemeName(scheme_list[best]))});
  }
  table.print(std::cout);
  std::cout << "\nExpected crossover: CPU-GPU-Hybrid (GDRCopy) wins small "
               "faces, Proposed (kernel fusion) wins once faces outgrow the "
               "BAR1 window — and Proposed+Hybrid (the paper's Related-Work "
               "combination) tracks the winner on both sides.\n";
  return 0;
}
