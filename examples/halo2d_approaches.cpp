// The paper's §III analysis, executable: a 2-D halo exchange among four
// GPUs (Fig. 3) implemented three ways —
//
//   Algorithm 1: MPI-level EXPLICIT pack/unpack (MPI_Pack / MPI_Unpack are
//                blocking, so packing cannot overlap communication),
//   Algorithm 2: APPLICATION-level pack/unpack (the app launches its own
//                GPU kernels, one synchronization per phase — more code,
//                still no overlap with communication),
//   Algorithm 3: MPI-level IMPLICIT pack/unpack (pass the derived datatype
//                straight to Isend/Irecv and let the runtime schedule) —
//                the productive form the proposed fusion engine accelerates.
//
// Each variant runs the same exchange on the same data and is validated
// against the others; per-iteration latencies show Algorithm 3 + fusion
// winning, exactly the argument of §III/§IV.
//
// Build & run:  ./build/examples/halo2d_approaches
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util/table.hpp"
#include "ddt/pack.hpp"
#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"

using namespace dkf;

namespace {

// A 2x2 process grid over an N x N global matrix of doubles; each rank owns
// an (N/2+2) x (N/2+2) block with a one-cell ghost border and exchanges its
// boundary column with its horizontal neighbor (the non-contiguous case the
// paper's Fig. 3 highlights).
constexpr std::size_t kN = 256;                 // owned cells per dimension
constexpr std::size_t kTotal = kN + 2;          // with ghost border
constexpr std::size_t kRowBytes = kTotal * 8;
// "for each boundary buffer j for neighbor i" (Algorithms 1-3): the
// application carries several field arrays, each exchanging its own
// boundary column — this is the BULK the fusion framework batches.
constexpr int kFields = 8;

ddt::DatatypePtr columnType() {
  // One column of the local block: kN doubles strided by a full row.
  return ddt::Datatype::vector(kN, 1, static_cast<std::int64_t>(kTotal),
                               ddt::Datatype::float64());
}

int horizontalNeighbor(int rank) { return rank ^ 1; }

struct Setup {
  sim::Engine eng;
  hw::Cluster cluster;
  mpi::Runtime rt;
  // blocks[rank][field]: one local array per field per rank.
  std::vector<std::vector<gpu::MemSpan>> blocks;

  explicit Setup(schemes::Scheme scheme)
      : cluster(eng, hw::lassen(), 1),
        rt(cluster, [scheme] {
          mpi::RuntimeConfig cfg;
          cfg.scheme = scheme;
          cfg.enable_direct_ipc = false;  // isolate the pack-path comparison
          return cfg;
        }()) {
    blocks.resize(4);
    for (int r = 0; r < 4; ++r) {
      for (int f = 0; f < kFields; ++f) {
        auto block = rt.proc(r).allocDevice(kTotal * kTotal * 8);
        auto* cells = reinterpret_cast<double*>(block.bytes.data());
        for (std::size_t i = 0; i < kTotal * kTotal; ++i) {
          cells[i] = r * 1000.0 + f * 59.0 + static_cast<double>(i % 997);
        }
        blocks[r].push_back(block);
      }
    }
  }

  gpu::MemSpan ownColumn(int rank, int field) {
    // The owned boundary column adjacent to the horizontal neighbor.
    const std::size_t col = rank % 2 == 0 ? kN : 1;
    return blocks[rank][field].subspan(
        kRowBytes + col * 8, kTotal * kTotal * 8 - kRowBytes - col * 8);
  }
  gpu::MemSpan ghostColumn(int rank, int field) {
    const std::size_t col = rank % 2 == 0 ? kN + 1 : 0;
    return blocks[rank][field].subspan(
        kRowBytes + col * 8, kTotal * kTotal * 8 - kRowBytes - col * 8);
  }
};

// ---- Algorithm 1: MPI-level explicit pack/unpack ----
sim::Task<void> algorithm1(mpi::Proc& p, Setup& s, TimeNs& out) {
  auto type = columnType();
  const auto layout = p.layoutCache().get(type, 1);
  std::vector<gpu::MemSpan> packed_s, packed_r;
  for (int f = 0; f < kFields; ++f) {
    packed_s.push_back(p.allocDevice(layout->size()));
    packed_r.push_back(p.allocDevice(layout->size()));
  }
  const int nbr = horizontalNeighbor(p.rank());

  co_await p.barrier();
  const TimeNs t0 = p.engine().now();
  std::vector<mpi::RequestPtr> reqs;
  for (int f = 0; f < kFields; ++f) {
    // MPI_Irecv of the packed representation...
    reqs.push_back(co_await p.irecv(packed_r[f], ddt::Datatype::byte(),
                                    layout->size(), nbr, f));
    // ...MPI_Pack (BLOCKING: must finish before Isend can be posted)...
    co_await p.pack(s.ownColumn(p.rank(), f), type, 1, packed_s[f]);
    reqs.push_back(co_await p.isend(packed_s[f], ddt::Datatype::byte(),
                                    layout->size(), nbr, f));
  }
  co_await p.waitall(std::move(reqs));
  // ...MPI_Unpack (BLOCKING again), one call per boundary buffer.
  for (int f = 0; f < kFields; ++f) {
    co_await p.unpack(packed_r[f], s.ghostColumn(p.rank(), f), type, 1);
  }
  if (p.rank() == 0) out = p.engine().now() - t0;
  for (int f = 0; f < kFields; ++f) {
    p.freeDevice(packed_s[f]);
    p.freeDevice(packed_r[f]);
  }
}

// ---- Algorithm 2: application-level pack/unpack kernels ----
sim::Task<void> algorithm2(mpi::Proc& p, Setup& s, TimeNs& out) {
  auto type = columnType();
  const auto layout = p.layoutCache().get(type, 1);
  std::vector<gpu::MemSpan> packed_s, packed_r;
  for (int f = 0; f < kFields; ++f) {
    packed_s.push_back(p.allocDevice(layout->size()));
    packed_r.push_back(p.allocDevice(layout->size()));
  }
  const int nbr = horizontalNeighbor(p.rank());
  auto& gpu = p.gpu();
  const auto stream = gpu.createStream();

  co_await p.barrier();
  const TimeNs t0 = p.engine().now();

  // pack_gpu_kernel(...) per boundary buffer; ONE sync for the whole phase
  // (Algorithm 2's advantage over Algorithm 1).
  TimeNs pack_done = 0;
  for (int f = 0; f < kFields; ++f) {
    gpu::Gpu::Op op;
    op.kind = gpu::Gpu::Op::Kind::Pack;
    op.layout = layout;
    op.src = s.ownColumn(p.rank(), f).bytes;
    op.dst = packed_s[f].bytes;
    co_await p.cpu().busy(gpu.spec().kernel_launch_overhead);
    const auto h = gpu.launchKernel(stream, std::move(op));
    pack_done = h.end;
  }
  co_await p.cpu().holdUntil(pack_done);  // Synchronize_TO_GPU()

  std::vector<mpi::RequestPtr> reqs;
  for (int f = 0; f < kFields; ++f) {
    reqs.push_back(co_await p.irecv(packed_r[f], ddt::Datatype::byte(),
                                    layout->size(), nbr, f));
    reqs.push_back(co_await p.isend(packed_s[f], ddt::Datatype::byte(),
                                    layout->size(), nbr, f));
  }
  co_await p.waitall(std::move(reqs));

  TimeNs unpack_done = 0;
  for (int f = 0; f < kFields; ++f) {
    gpu::Gpu::Op op;
    op.kind = gpu::Gpu::Op::Kind::Unpack;
    op.layout = layout;
    op.src = packed_r[f].bytes;
    op.dst = s.ghostColumn(p.rank(), f).bytes;
    co_await p.cpu().busy(gpu.spec().kernel_launch_overhead);
    const auto h = gpu.launchKernel(stream, std::move(op));
    unpack_done = h.end;
  }
  co_await p.cpu().holdUntil(unpack_done);  // Synchronize_TO_GPU()

  if (p.rank() == 0) out = p.engine().now() - t0;
  for (int f = 0; f < kFields; ++f) {
    p.freeDevice(packed_s[f]);
    p.freeDevice(packed_r[f]);
  }
}

// ---- Algorithm 3: MPI-level implicit (derived datatypes end to end) ----
sim::Task<void> algorithm3(mpi::Proc& p, Setup& s, TimeNs& out) {
  auto type = columnType();
  const int nbr = horizontalNeighbor(p.rank());

  co_await p.barrier();
  const TimeNs t0 = p.engine().now();
  std::vector<mpi::RequestPtr> reqs;
  for (int f = 0; f < kFields; ++f) {
    reqs.push_back(
        co_await p.irecv(s.ghostColumn(p.rank(), f), type, 1, nbr, f));
    reqs.push_back(
        co_await p.isend(s.ownColumn(p.rank(), f), type, 1, nbr, f));
  }
  co_await p.waitall(std::move(reqs));
  if (p.rank() == 0) out = p.engine().now() - t0;
}

using Algorithm = sim::Task<void> (*)(mpi::Proc&, Setup&, TimeNs&);

/// Run one algorithm under one scheme; returns rank-0 latency and leaves
/// the ghost columns filled for validation.
TimeNs runVariant(Algorithm algo, schemes::Scheme scheme,
                  std::vector<double>* ghosts_out = nullptr) {
  Setup s(scheme);
  TimeNs latency = 0;
  for (int r = 0; r < 4; ++r) {
    s.eng.spawn(algo(s.rt.proc(r), s, latency));
  }
  s.eng.run();
  if (s.eng.unfinishedTasks() != 0) {
    std::cerr << "variant deadlocked\n";
    std::exit(1);
  }
  if (ghosts_out) {
    // Capture rank 0's ghost columns (all fields) for cross-validation.
    const auto layout = ddt::flatten(columnType(), 1);
    for (int f = 0; f < kFields; ++f) {
      auto ghost = s.ghostColumn(0, f);
      for (const auto& seg : layout.materialize()) {
        for (std::size_t i = 0; i < seg.len; i += 8) {
          double v;
          std::memcpy(&v, ghost.bytes.data() + seg.offset + i, 8);
          ghosts_out->push_back(v);
        }
      }
    }
  }
  return latency;
}

}  // namespace

int main() {
  std::cout << "2-D halo exchange among four GPUs (paper Fig. 3), one "
               "boundary column per neighbor,\nimplemented with the three "
               "approaches of Section III:\n";

  // Validate: all three approaches produce identical ghost columns.
  std::vector<double> g1, g2, g3;
  runVariant(algorithm1, schemes::Scheme::GpuSync, &g1);
  runVariant(algorithm2, schemes::Scheme::GpuSync, &g2);
  runVariant(algorithm3, schemes::Scheme::GpuSync, &g3);
  if (g1 != g2 || g2 != g3 || g1.empty()) {
    std::cerr << "FAILED: approaches disagree on the exchanged data\n";
    return 1;
  }
  std::cout << "\nvalidation: all three approaches exchange identical ghost "
               "columns (" << g1.size() << " cells)\n\n";

  bench::Table table({"Approach", "Lines of app code (paper)", "GPU-Sync",
                      "Proposed (fusion)"});
  struct Row {
    const char* name;
    const char* loc;
    Algorithm algo;
  };
  const Row rows[] = {
      {"Alg. 1: MPI explicit pack/unpack", "16", algorithm1},
      {"Alg. 2: application-level kernels", "18", algorithm2},
      {"Alg. 3: MPI implicit (datatypes)", "10", algorithm3},
  };
  for (const auto& row : rows) {
    const TimeNs sync = runVariant(row.algo, schemes::Scheme::GpuSync);
    const TimeNs fused = runVariant(row.algo, schemes::Scheme::Proposed);
    table.addRow({row.name, row.loc, bench::cellUs(toUs(sync)),
                  bench::cellUs(toUs(fused))});
  }
  table.print(std::cout);
  std::cout << "\nThe paper's point: Algorithm 3 is the most productive AND, "
               "with the fusion engine\nbehind it, the fastest — the "
               "runtime can batch and overlap what explicit\napproaches "
               "serialize.\n";
  return 0;
}
