// Capture a Chrome-trace timeline of one bulk fused exchange — the
// executable version of the paper's Fig. 7 communication flow. Open the
// output in chrome://tracing or https://ui.perfetto.dev:
//
//   ./build/examples/trace_capture [out.json]
//
// Tracks: per-GPU streams (fused pack/unpack kernels), fabric channels
// (RTS/CTS control, RDMA data). The fused kernels appear as single wide
// spans handling many requests while data already flies on the fabric —
// the overlap the fusion framework exists to create.
#include <fstream>
#include <iostream>

#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "sim/trace.hpp"
#include "workloads/workloads.hpp"

using namespace dkf;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "dkf_trace.json";

  sim::Engine engine;
  hw::Cluster cluster(engine, hw::lassen(), 2);
  auto tracer = sim::Tracer::enabled();
  cluster.fabric().setTracer(&tracer);
  for (std::size_t g = 0; g < cluster.gpuCount(); ++g) {
    cluster.gpu(g).setTracer(&tracer);
  }

  mpi::RuntimeConfig config;
  config.scheme = schemes::Scheme::Proposed;
  mpi::Runtime runtime(cluster, config);
  // Scheduler-level observability: enqueues/rejections as instants, fused
  // batches as spans, pending backlog as counter graphs.
  for (int r = 0; r < runtime.worldSize(); ++r) {
    runtime.proc(r).ddtEngine().setTracer(&tracer);
    // Layout-cache residency/eviction counters, one series per rank.
    runtime.proc(r).layoutCache().setTracer(
        &tracer, &engine, "layout_cache.rank" + std::to_string(r));
    // Compiled-plan cache hit/miss/residency counters, one series per rank.
    runtime.proc(r).planCache().setTracer(
        &tracer, &engine, "plan_cache.rank" + std::to_string(r));
  }

  const auto wl = workloads::specfem3dCm(64);
  const std::size_t region = wl.regionBytes();
  constexpr int kOps = 16;

  auto& a = runtime.proc(0);
  auto& b = runtime.proc(4);
  std::vector<gpu::MemSpan> sa, ra, sb, rb;
  for (int i = 0; i < kOps; ++i) {
    sa.push_back(a.allocDevice(region));
    ra.push_back(a.allocDevice(region));
    sb.push_back(b.allocDevice(region));
    rb.push_back(b.allocDevice(region));
  }

  auto body = [](mpi::Proc& p, std::vector<gpu::MemSpan>& sends,
                 std::vector<gpu::MemSpan>& recvs, ddt::DatatypePtr type,
                 int peer) -> sim::Task<void> {
    std::vector<mpi::RequestPtr> reqs;
    for (int i = 0; i < kOps; ++i) {
      reqs.push_back(co_await p.irecv(recvs[i], type, 1, peer, i));
      reqs.push_back(co_await p.isend(sends[i], type, 1, peer, i));
    }
    co_await p.waitall(std::move(reqs));
  };
  engine.spawn(body(a, sa, ra, wl.type, 4));
  engine.spawn(body(b, sb, rb, wl.type, 0));
  engine.run();

  std::ofstream out(out_path);
  tracer.exportJson(out);
  std::cout << "captured " << tracer.eventCount() << " events over "
            << formatDuration(engine.now()) << " of virtual time\n"
            << "trace written to " << out_path
            << " — open in chrome://tracing or ui.perfetto.dev\n";
  return 0;
}
