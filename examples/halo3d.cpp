// 3-D domain decomposition halo exchange (Comb [33] style).
//
// Eight ranks in a 2x2x2 grid each own an n^3 block of doubles with a
// one-cell ghost shell, described by MPI subarray datatypes. Every
// iteration each rank exchanges its six faces with its (periodic)
// neighbors using non-blocking sends/receives — the paper's motivating
// access pattern (Fig. 3 generalized to 3-D). The example validates the
// ghost cells after the exchange and reports per-iteration latency for the
// fusion engine vs GPU-Sync.
//
// Build & run:  ./build/examples/halo3d
#include <array>
#include <cstring>
#include <iostream>
#include <vector>

#include "hw/cluster.hpp"
#include "hw/machines.hpp"
#include "mpi/runtime.hpp"
#include "workloads/halo_exchanger.hpp"
#include "workloads/workloads.hpp"

using namespace dkf;

namespace {

constexpr std::size_t kN = 24;      // owned cells per dimension
constexpr std::size_t kGhost = 1;
constexpr std::size_t kTotal = kN + 2 * kGhost;
constexpr int kGrid = 2;            // ranks per dimension

int rankOf(int x, int y, int z) {
  auto wrap = [](int v) { return (v + kGrid) % kGrid; };
  return (wrap(x) * kGrid + wrap(y)) * kGrid + wrap(z);
}

std::array<int, 3> coordsOf(int rank) {
  return {rank / (kGrid * kGrid), (rank / kGrid) % kGrid, rank % kGrid};
}

sim::Task<void> rankProgram(mpi::Proc& proc, workloads::HaloExchanger& ex,
                            int iterations, TimeNs& elapsed_out) {
  TimeNs total = 0;
  for (int iter = 0; iter < iterations; ++iter) {
    co_await proc.barrier();
    const TimeNs t0 = proc.engine().now();
    co_await ex.exchange();
    total += proc.engine().now() - t0;
  }
  if (proc.rank() == 0) elapsed_out = total / static_cast<TimeNs>(iterations);
}

/// Fill the owned region with the rank id; ghost cells with a sentinel.
void initBlock(gpu::MemSpan block, int rank) {
  auto* cells = reinterpret_cast<double*>(block.bytes.data());
  for (std::size_t x = 0; x < kTotal; ++x) {
    for (std::size_t y = 0; y < kTotal; ++y) {
      for (std::size_t z = 0; z < kTotal; ++z) {
        const bool owned = x >= kGhost && x < kGhost + kN && y >= kGhost &&
                           y < kGhost + kN && z >= kGhost && z < kGhost + kN;
        cells[(x * kTotal + y) * kTotal + z] = owned ? rank : -1.0;
      }
    }
  }
}

/// After one exchange, every ghost face must hold the neighbor's rank id.
bool validateGhosts(gpu::MemSpan block, int rank) {
  const auto [cx, cy, cz] = coordsOf(rank);
  const auto* cells = reinterpret_cast<const double*>(block.bytes.data());
  auto cellAt = [&](std::size_t x, std::size_t y, std::size_t z) {
    return cells[(x * kTotal + y) * kTotal + z];
  };
  // Check the -x ghost face: filled by the neighbor at (cx-1, cy, cz).
  const int nbr = rankOf(cx - 1, cy, cz);
  for (std::size_t y = kGhost; y < kGhost + kN; ++y) {
    for (std::size_t z = kGhost; z < kGhost + kN; ++z) {
      if (cellAt(0, y, z) != static_cast<double>(nbr)) {
        std::cerr << "rank " << rank << ": ghost(-x) at (" << y << "," << z
                  << ") = " << cellAt(0, y, z) << ", want " << nbr << "\n";
        return false;
      }
    }
  }
  return true;
}

TimeNs runScheme(schemes::Scheme scheme, bool validate) {
  sim::Engine engine;
  auto machine = hw::lassen();
  machine.node.gpu.arena_bytes = kTotal * kTotal * kTotal * 8 + (16u << 20);
  hw::Cluster cluster(engine, machine, /*node_count=*/2);  // 8 GPUs
  mpi::RuntimeConfig config;
  config.scheme = scheme;
  mpi::Runtime runtime(cluster, config);

  std::vector<gpu::MemSpan> blocks;
  std::vector<std::unique_ptr<workloads::HaloExchanger>> exchangers;
  for (int r = 0; r < runtime.worldSize(); ++r) {
    auto block = runtime.proc(r).allocDevice(kTotal * kTotal * kTotal * 8);
    initBlock(block, r);
    blocks.push_back(block);
    exchangers.push_back(std::make_unique<workloads::HaloExchanger>(
        runtime.proc(r), block,
        workloads::HaloExchanger::Config{kN, kGhost, {kGrid, kGrid, kGrid}}));
  }

  TimeNs per_iter = 0;
  for (int r = 0; r < runtime.worldSize(); ++r) {
    engine.spawn(rankProgram(runtime.proc(r), *exchangers[r],
                             /*iterations=*/5, per_iter));
  }
  engine.run();

  if (validate) {
    for (int r = 0; r < runtime.worldSize(); ++r) {
      if (!validateGhosts(blocks[r], r)) return 0;
    }
    std::cout << "ghost-cell validation: OK on all " << runtime.worldSize()
              << " ranks\n";
  }
  return per_iter;
}

}  // namespace

int main() {
  std::cout << "3-D halo exchange: 2x2x2 ranks, " << kN << "^3 doubles each, "
            << "6 subarray faces per rank per iteration\n\n";
  const TimeNs fusion = runScheme(schemes::Scheme::Proposed, /*validate=*/true);
  const TimeNs sync = runScheme(schemes::Scheme::GpuSync, /*validate=*/false);
  if (fusion == 0) {
    std::cerr << "validation failed\n";
    return 1;
  }
  std::cout << "\nper-iteration halo latency (virtual):\n"
            << "  Proposed (kernel fusion): " << formatDuration(fusion) << "\n"
            << "  GPU-Sync baseline:        " << formatDuration(sync) << "\n"
            << "  speedup:                  "
            << static_cast<double>(sync) / static_cast<double>(fusion)
            << "x\n";
  return 0;
}
